/**
 * @file
 * Miss status holding registers.
 *
 * The MSHR file bounds the number of outstanding misses a cache level
 * may have in flight, merges requests to the same block, and keeps the
 * occupancy integral used for the paper's "average number of
 * outstanding misses" metric (Table 6).
 */

#ifndef SMTOS_MEM_MSHR_H
#define SMTOS_MEM_MSHR_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "snap/fwd.h"

namespace smtos {

/** Result of requesting an MSHR for a missing block. */
struct MshrGrant
{
    /** Cycle at which the miss handling may begin (>= request time when
     *  the file was full and the request had to wait for a free slot,
     *  or when it merged into an existing fill). */
    Cycle startAt = 0;
    /** True when the request merged into an in-flight fill. */
    bool merged = false;
    /** readyAt of the merged fill (valid when merged). */
    Cycle mergedReadyAt = 0;
};

/** A fixed-size MSHR file. */
class MshrFile
{
  public:
    MshrFile(std::string name, int entries);

    /**
     * Request handling of a miss on @p blockAddr observed at @p now.
     * If an in-flight fill of the block exists the request merges.
     * Otherwise a free entry is claimed; if none is free the request
     * stalls until the earliest in-flight fill completes.
     *
     * After a non-merged grant the caller must call complete() to set
     * the fill completion time.
     */
    MshrGrant request(Addr blockAddr, Cycle now);

    /** Finish allocation: the granted fill completes at @p readyAt. */
    void complete(Addr blockAddr, Cycle startAt, Cycle readyAt);

    /**
     * A cache hit on a block whose fill is still in flight must wait
     * for the fill; counts as a merged request. Returns the fill's
     * completion time, or 0 when no fill is outstanding.
     */
    Cycle hitUnderFill(Addr blockAddr, Cycle now);

    /** Entries currently in flight at @p now. */
    int outstanding(Cycle now) const;

    /** Total misses that entered the file (non-merged). */
    std::uint64_t fills() const { return fills_; }

    /** Requests that merged into an existing fill. */
    std::uint64_t merges() const { return merges_; }

    /** Requests delayed because the file was full. */
    std::uint64_t fullStalls() const { return fullStalls_; }

    /**
     * Sum over all fills of their in-flight duration; dividing by
     * elapsed cycles yields average outstanding misses.
     */
    double occupancyIntegral() const { return occupancyIntegral_; }

    int size() const { return static_cast<int>(entries_.size()); }

    static constexpr std::uint32_t snapVersion = 1;
    void save(Snapshotter &sp) const;
    void load(Restorer &rs);

  private:
    struct Entry
    {
        bool valid = false;
        Addr blockAddr = 0;
        Cycle readyAt = 0;
    };

    void releaseExpired(Cycle now);

    std::string name_;
    std::vector<Entry> entries_;
    std::uint64_t fills_ = 0;
    std::uint64_t merges_ = 0;
    std::uint64_t fullStalls_ = 0;
    double occupancyIntegral_ = 0.0;
};

} // namespace smtos

#endif // SMTOS_MEM_MSHR_H
