/**
 * @file
 * Physical memory timing model: fixed latency, fully pipelined
 * (Table 1: 128MB, 90-cycle latency).
 */

#ifndef SMTOS_MEM_DRAM_H
#define SMTOS_MEM_DRAM_H

#include <cstdint>

#include "common/types.h"
#include "snap/fwd.h"

namespace smtos {

/**
 * The Table-1 memory latency, named in one place: the flat DRAM
 * default, HierarchyParams::dramLatency and SystemConfig::memLatency
 * all derive from it.
 */
constexpr Cycle defaultMemLatency = 90;

/** Fully pipelined fixed-latency DRAM. */
class Dram
{
  public:
    explicit Dram(Cycle latency = defaultMemLatency)
        : latency_(latency)
    {
    }

    /** @return completion cycle of an access arriving at @p now. */
    Cycle
    access(Cycle now)
    {
        ++accesses_;
        return now + latency_;
    }

    std::uint64_t accesses() const { return accesses_; }
    Cycle latency() const { return latency_; }

    static constexpr std::uint32_t snapVersion = 1;
    void save(Snapshotter &sp) const;
    void load(Restorer &rs);

  private:
    Cycle latency_;
    std::uint64_t accesses_ = 0;
};

} // namespace smtos

#endif // SMTOS_MEM_DRAM_H
