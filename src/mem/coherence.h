/**
 * @file
 * Snoopy MESI coherence over the CMP's shared L2 bus seam.
 *
 * Each core's private L1s are kept coherent by a central hub that
 * snoops the other cores on every store (hit or miss) and every L1
 * read miss. MESI states are carried implicitly by the existing tag
 * model: Modified = resident + dirty, Shared/Exclusive = resident +
 * clean (a store to an Exclusive line — no remote copy — upgrades
 * silently at zero cost, exactly MESI's E->M; a store that finds
 * remote clean copies pays the S->M upgrade broadcast). No per-line
 * state byte is added, so the Cache snapshot format is unchanged and
 * single-core artifacts stay byte-identical.
 *
 * Latencies are closed-form constants so the protocol is unit-testable
 * (tests/test_smp): an upgrade (invalidate remote clean sharers) adds
 * upgradeLatency; an intervention (remote Modified copy must be
 * written back before the requestor proceeds) adds
 * interventionLatency. Coherence traffic is counted at the hub only —
 * snoops never touch the per-cache interference statistics.
 */

#ifndef SMTOS_MEM_COHERENCE_H
#define SMTOS_MEM_COHERENCE_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "snap/fwd.h"

namespace smtos {

class Hierarchy;

/** Chip-wide coherence traffic counters. */
struct CoherenceStats
{
    std::uint64_t snoopProbes = 0;      ///< remote-core probes issued
    std::uint64_t invalidations = 0;    ///< remote copies invalidated
    std::uint64_t downgrades = 0;       ///< remote M copies demoted to S
    std::uint64_t interventionWritebacks = 0; ///< dirty data supplied
    std::uint64_t upgrades = 0;         ///< S->M broadcasts (clean sharers)

    bool any() const
    {
        return snoopProbes != 0 || invalidations != 0 ||
               downgrades != 0 || interventionWritebacks != 0 ||
               upgrades != 0;
    }

    CoherenceStats delta(const CoherenceStats &e) const
    {
        CoherenceStats d;
        d.snoopProbes = snoopProbes - e.snoopProbes;
        d.invalidations = invalidations - e.invalidations;
        d.downgrades = downgrades - e.downgrades;
        d.interventionWritebacks =
            interventionWritebacks - e.interventionWritebacks;
        d.upgrades = upgrades - e.upgrades;
        return d;
    }
};

/** The snoop hub. One per chip; attached to every core's Hierarchy. */
class CoherenceHub
{
  public:
    /** Extra cycles to invalidate remote clean sharers (S->M). */
    static constexpr Cycle upgradeLatency = 4;
    /** Extra cycles when a remote Modified copy intervenes (its
     *  writeback to the shared L2 is on the critical path). */
    static constexpr Cycle interventionLatency = 16;

    /** Register a core's hierarchy, in core order. */
    void attach(Hierarchy *h) { cores_.push_back(h); }
    int numCores() const { return static_cast<int>(cores_.size()); }

    /**
     * Core @p who stores to @p paddr (L1D hit or write-validate
     * fill). Invalidates every remote L1 copy; returns the extra
     * latency on the store's completion path (0 when the line was
     * Exclusive/Modified here — no remote copies).
     */
    Cycle onWrite(int who, Addr paddr);

    /**
     * Core @p who read-misses @p paddr (L1I or L1D). A remote
     * Modified copy is downgraded to Shared and its writeback charged
     * on the fill path; clean remote copies simply share.
     */
    Cycle onReadMiss(int who, Addr paddr);

    /** DMA write: invalidate the stale copy in every core's L1D. */
    void dmaInvalidate(Addr paddr);

    const CoherenceStats &stats() const { return stats_; }

    static constexpr std::uint32_t snapVersion = 1;
    void save(Snapshotter &sp) const;
    void load(Restorer &rs);

  private:
    std::vector<Hierarchy *> cores_;
    CoherenceStats stats_;
};

} // namespace smtos

#endif // SMTOS_MEM_COHERENCE_H
