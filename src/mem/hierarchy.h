/**
 * @file
 * The full memory hierarchy of Table 1: split 128KB 2-way L1s, a 16MB
 * direct-mapped L2, MSHRs, a store buffer, the L1-L2 and memory buses,
 * and DRAM. Timing is computed by latency composition over the shared
 * structural resources (buses, MSHRs), which captures queueing and
 * bandwidth contention without a full event queue.
 */

#ifndef SMTOS_MEM_HIERARCHY_H
#define SMTOS_MEM_HIERARCHY_H

#include <cstdint>
#include <memory>

#include "common/types.h"
#include "mem/bus.h"
#include "mem/cache.h"
#include "mem/dram.h"
#include "mem/memctrl.h"
#include "mem/mshr.h"
#include "mem/storebuffer.h"
#include "snap/fwd.h"

namespace smtos {

class CoherenceHub;

/** All memory-system parameters (Table 1 defaults). */
struct HierarchyParams
{
    CacheParams l1i{"L1I", 128 * 1024, 2, 64};
    CacheParams l1d{"L1D", 128 * 1024, 2, 64};
    CacheParams l2{"L2", 16 * 1024 * 1024, 1, 64};
    Cycle l1HitLatency = 1;
    Cycle l1FillPenalty = 2;
    Cycle l2Latency = 20;
    int l1MshrEntries = 32;
    int l2MshrEntries = 32;
    int storeBufferEntries = 32;
    int l1l2BusBytesPerCycle = 32;  // 256 bits
    Cycle l1l2BusLatency = 2;
    int memBusBytesPerCycle = 16;   // 128 bits
    Cycle memBusLatency = 4;
    Cycle dramLatency = defaultMemLatency;
    /** Banked-DRAM geometry/policy (banked=false: flat model). */
    DramParams dram;
    /**
     * Table 9 mode: kernel and PAL references complete at L1 hit
     * latency without touching any cache state, isolating user-only
     * behavior of the hardware structures.
     */
    bool filterPrivileged = false;
};

/** Timing/result of one memory reference. */
struct MemResult
{
    bool l1Hit = false;
    bool l2Hit = false;
    Cycle readyAt = 0;
};

/** The composed memory system. */
class Hierarchy
{
  public:
    explicit Hierarchy(const HierarchyParams &params);

    /** Data reference (load or store) to physical address @p paddr. */
    MemResult data(Addr paddr, const AccessInfo &who, bool is_write,
                   Cycle now);

    /** Instruction fetch reference to physical address @p paddr. */
    MemResult fetch(Addr paddr, const AccessInfo &who, Cycle now);

    /**
     * Warming-only references for the functional fidelity: tag state
     * in the L1s and L2 (hits, allocations, replacement order) is
     * updated exactly as by data()/fetch(), but no timing is composed
     * — MSHRs, buses, the memory controller and the occupancy
     * integrals are untouched, so a later detailed interval sees warm
     * caches with cold (drained) timing structures.
     */
    void warmFetch(Addr paddr, const AccessInfo &who);
    void warmData(Addr paddr, const AccessInfo &who, bool is_write);

    /**
     * Retired store enters the store buffer; returns the cycle the
     * store occupied a slot (delayed when the buffer was full).
     */
    Cycle retireStore(Addr paddr, const AccessInfo &who, Cycle now);

    /** OS instruction-cache flush (e.g. on instruction page remap). */
    void flushIcache();

    /** OS data-cache flush. */
    void flushDcache();

    /** DMA write into memory (disk reads): invalidates stale L2/L1D. */
    void dmaWrite(Addr paddr, int bytes);

    Cache &l1i() { return l1i_; }
    Cache &l1d() { return l1d_; }
    Cache &l2() { return l2_; }
    const Cache &l1i() const { return l1i_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return l2_; }
    MshrFile &l1Mshr() { return l1Mshr_; }
    MshrFile &l2Mshr() { return l2Mshr_; }
    const MshrFile &l1Mshr() const { return l1Mshr_; }
    const MshrFile &l2Mshr() const { return l2Mshr_; }
    StoreBuffer &storeBuffer() { return storeBuffer_; }
    const StoreBuffer &storeBuffer() const { return storeBuffer_; }
    Bus &l1l2Bus() { return l1l2Bus_; }
    Bus &memBus() { return memBus_; }
    const Bus &memBus() const { return memBus_; }
    Dram &dram() { return memctrl_.flat(); }
    MemCtrl &memctrl() { return memctrl_; }
    const MemCtrl &memctrl() const { return memctrl_; }

    /** Occupancy integrals split per L1 for Table 6 reporting. */
    double imissIntegral() const { return imissIntegral_; }
    double dmissIntegral() const { return dmissIntegral_; }
    double l2missIntegral() const { return l2missIntegral_; }

    const HierarchyParams &params() const { return params_; }

    /** Enable/disable the Table 9 privileged-reference filter. */
    void setFilterPrivileged(bool on) { params_.filterPrivileged = on; }

    /**
     * CMP wiring: join coherence hub @p hub as core @p core, routing
     * the shared levels (L2, its MSHRs, both buses, the memory
     * controller) through @p l2_home (null = this hierarchy owns
     * them). Single-core machines never call this; every multicore
     * code path below is gated on hub_/l2Home_ being set, so the
     * single-core timing is bit-identical.
     */
    void
    setCoherence(CoherenceHub *hub, int core, Hierarchy *l2_home)
    {
        hub_ = hub;
        coreId_ = core;
        l2Home_ = l2_home;
    }
    CoherenceHub *coherence() const { return hub_; }
    int coreId() const { return coreId_; }

    static constexpr std::uint32_t snapVersion = 1;
    void save(Snapshotter &sp) const;
    void load(Restorer &rs);
    /** Per-core private slice (L1s, L1 MSHRs, store buffer, the L1
     *  occupancy integrals) for non-L2-owning cores of a CMP. */
    void savePrivate(Snapshotter &sp) const;
    void loadPrivate(Restorer &rs);

  private:
    /** The hierarchy owning the shared L2 complex (this one unless a
     *  CMP routed us elsewhere). */
    Hierarchy &shared() { return l2Home_ ? *l2Home_ : *this; }
    /** Common L1-miss path; returns fill completion time. */
    MemResult missPath(Cache &l1, Addr paddr, const AccessInfo &who,
                       bool is_write, Cycle now, bool is_ifetch);

    HierarchyParams params_;
    CoherenceHub *hub_ = nullptr;
    Hierarchy *l2Home_ = nullptr;
    int coreId_ = 0;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    MshrFile l1Mshr_;
    MshrFile l2Mshr_;
    StoreBuffer storeBuffer_;
    Bus l1l2Bus_;
    Bus memBus_;
    MemCtrl memctrl_;
    double imissIntegral_ = 0.0;
    double dmissIntegral_ = 0.0;
    double l2missIntegral_ = 0.0;
};

} // namespace smtos

#endif // SMTOS_MEM_HIERARCHY_H
