#include "mem/storebuffer.h"

#include <algorithm>

#include "common/logging.h"

namespace smtos {

StoreBuffer::StoreBuffer(int entries)
{
    smtos_assert(entries > 0);
    drains_.assign(static_cast<size_t>(entries), 0);
    valid_.assign(static_cast<size_t>(entries), false);
}

void
StoreBuffer::releaseExpired(Cycle now)
{
    for (size_t i = 0; i < drains_.size(); ++i)
        if (valid_[i] && drains_[i] <= now)
            valid_[i] = false;
}

Cycle
StoreBuffer::push(Cycle now, Cycle drain_done)
{
    releaseExpired(now);
    ++stores_;

    Cycle enter = now;
    size_t slot = drains_.size();
    for (size_t i = 0; i < drains_.size(); ++i) {
        if (!valid_[i]) {
            slot = i;
            break;
        }
    }
    if (slot == drains_.size()) {
        // Full: wait for the earliest drain.
        ++fullStalls_;
        Cycle earliest = drains_[0];
        size_t earliest_i = 0;
        for (size_t i = 1; i < drains_.size(); ++i) {
            if (drains_[i] < earliest) {
                earliest = drains_[i];
                earliest_i = i;
            }
        }
        enter = std::max(now, earliest);
        slot = earliest_i;
    }
    valid_[slot] = true;
    drains_[slot] = std::max(drain_done, enter);
    return enter;
}

int
StoreBuffer::occupancy(Cycle now) const
{
    int n = 0;
    for (size_t i = 0; i < drains_.size(); ++i)
        if (valid_[i] && drains_[i] > now)
            ++n;
    return n;
}

bool
StoreBuffer::full(Cycle now) const
{
    return occupancy(now) == size();
}

} // namespace smtos
