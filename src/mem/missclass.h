/**
 * @file
 * Miss-cause classification and constructive-sharing accounting.
 *
 * Tables 3 and 7 of the paper break every miss in a hardware structure
 * (BTB, caches, TLBs) into: intrathread conflict, interthread conflict,
 * user-kernel conflict, invalidation by the OS, and compulsory.
 * Table 8 reports misses *avoided* because another thread prefetched a
 * block. This header provides the shared machinery for both.
 */

#ifndef SMTOS_MEM_MISSCLASS_H
#define SMTOS_MEM_MISSCLASS_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "snap/fwd.h"

namespace smtos {

/** Identity of an access for interference accounting. */
struct AccessInfo
{
    ThreadId thread = invalidThread;
    Mode mode = Mode::User;
    CtxId ctx = invalidCtx;

    /** PAL references are accounted as kernel in the paper's tables. */
    bool isKernel() const { return mode != Mode::User; }
};

/** Why a miss happened (the paper's five conflict rows). */
enum class MissCause : std::uint8_t
{
    Compulsory = 0,     ///< first ever reference to the block
    Intrathread,        ///< evicted earlier by the same thread, same mode
    Interthread,        ///< evicted by a different thread, same mode class
    UserKernel,         ///< evicted by the other privilege class
    OsInvalidation,     ///< discarded by an explicit OS flush/invalidate
};

/** Number of MissCause values. */
constexpr int numMissCauses = 5;

/** Human-readable cause label matching the paper's row names. */
const char *missCauseName(MissCause c);

/**
 * Per-structure interference statistics, split by the privilege class
 * of the *missing* (or would-have-missed) reference as in the paper's
 * User / Kernel column pairs.
 */
struct InterferenceStats
{
    /** accesses[1] counts kernel+PAL references, accesses[0] user. */
    std::uint64_t accesses[2] = {0, 0};
    /** misses by privilege class of the missing reference. */
    std::uint64_t misses[2] = {0, 0};
    /** cause[missing class][MissCause]. */
    std::uint64_t cause[2][numMissCauses] = {{0}, {0}};
    /**
     * Misses avoided by constructive sharing:
     * avoided[accessor class][filler class].
     */
    std::uint64_t avoided[2][2] = {{0, 0}, {0, 0}};

    std::uint64_t totalAccesses() const { return accesses[0] + accesses[1]; }
    std::uint64_t totalMisses() const { return misses[0] + misses[1]; }

    void reset() { *this = InterferenceStats(); }
};

/**
 * Tracks, for every block address ever evicted from a structure, who
 * evicted it, so the next miss on that block can be classified.
 */
class MissClassifier
{
  public:
    /**
     * Classify a miss by @p who on @p blockAddr. Returns Compulsory when
     * the block has never been resident. Inline: this sits on every
     * miss in every structure at either fidelity.
     */
    MissCause
    classify(Addr blockAddr, const AccessInfo &who) const
    {
        const Evictor *ev = evictors_.find(blockAddr);
        if (!ev)
            return MissCause::Compulsory;
        if (ev->byInvalidation)
            return MissCause::OsInvalidation;
        if (ev->kernel != who.isKernel())
            return MissCause::UserKernel;
        if (ev->thread == who.thread)
            return MissCause::Intrathread;
        return MissCause::Interthread;
    }

    /** Record that @p who evicted @p blockAddr (capacity/conflict). */
    void
    recordEviction(Addr blockAddr, const AccessInfo &who)
    {
        evictors_.upsert(blockAddr) =
            Evictor{who.thread, who.isKernel(), false};
    }

    /** Record that the OS invalidated @p blockAddr via an explicit op. */
    void
    recordInvalidation(Addr blockAddr)
    {
        if (Evictor *ev = evictors_.findMutable(blockAddr))
            ev->byInvalidation = true;
        else
            evictors_.upsert(blockAddr) =
                Evictor{invalidThread, true, true};
    }

    /** Number of distinct blocks tracked (for tests). */
    std::size_t trackedBlocks() const { return evictors_.size(); }

    void clear() { evictors_.clear(); }

    static constexpr std::uint32_t snapVersion = 1;
    void save(Snapshotter &sp) const;
    void load(Restorer &rs);

  private:
    struct Evictor
    {
        ThreadId thread;
        bool kernel;
        bool byInvalidation;
    };

    /**
     * Open-addressing (linear probing) map from block address to its
     * last Evictor. Entries are only added or overwritten, never
     * erased, so probe chains stay intact without tombstones. Replaces
     * std::unordered_map on this path: the classifier is queried on
     * every miss, and chasing bucket nodes dominated its cost.
     */
    class EvictorTable
    {
      public:
        EvictorTable() : slots_(initialSlots) {}

        const Evictor *
        find(Addr key) const
        {
            const Slot &s = slots_[probe(key)];
            return s.used ? &s.ev : nullptr;
        }

        Evictor *
        findMutable(Addr key)
        {
            Slot &s = slots_[probe(key)];
            return s.used ? &s.ev : nullptr;
        }

        /** Insert (default-constructed) or locate @p key. */
        Evictor &
        upsert(Addr key)
        {
            // Grow at 70% occupancy, before probing for the insert.
            if ((size_ + 1) * 10 >= slots_.size() * 7)
                grow();
            Slot &s = slots_[probe(key)];
            if (!s.used) {
                s.used = true;
                s.key = key;
                s.ev = Evictor{};
                ++size_;
            }
            return s.ev;
        }

        std::size_t size() const { return size_; }

        void
        clear()
        {
            slots_.assign(initialSlots, Slot{});
            size_ = 0;
        }

        /** Visit every entry (unspecified order; save() sorts keys). */
        template <typename F>
        void
        forEach(F &&f) const
        {
            for (const Slot &s : slots_)
                if (s.used)
                    f(s.key, s.ev);
        }

      private:
        struct Slot
        {
            Addr key = 0;
            Evictor ev{};
            bool used = false;
        };

        static constexpr std::size_t initialSlots = 1024;

        static std::size_t
        hashOf(Addr k)
        {
            // splitmix64 finalizer: full-avalanche, so clustered block
            // addresses spread over the table.
            k ^= k >> 33;
            k *= 0xff51afd7ed558ccdull;
            k ^= k >> 33;
            k *= 0xc4ceb9fe1a85ec53ull;
            k ^= k >> 33;
            return static_cast<std::size_t>(k);
        }

        /** Index of @p key's slot, or of the unused slot where it
         *  belongs. Capacity is a power of two; the load-factor cap
         *  guarantees an unused slot exists. */
        std::size_t
        probe(Addr key) const
        {
            const std::size_t mask = slots_.size() - 1;
            std::size_t i = hashOf(key) & mask;
            while (slots_[i].used && slots_[i].key != key)
                i = (i + 1) & mask;
            return i;
        }

        void
        grow()
        {
            std::vector<Slot> old = std::move(slots_);
            slots_.assign(old.size() * 2, Slot{});
            for (const Slot &s : old) {
                if (!s.used)
                    continue;
                Slot &d = slots_[probe(s.key)];
                d = s;
            }
        }

        std::vector<Slot> slots_;
        std::size_t size_ = 0;
    };

    EvictorTable evictors_;
};

} // namespace smtos

#endif // SMTOS_MEM_MISSCLASS_H
