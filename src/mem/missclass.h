/**
 * @file
 * Miss-cause classification and constructive-sharing accounting.
 *
 * Tables 3 and 7 of the paper break every miss in a hardware structure
 * (BTB, caches, TLBs) into: intrathread conflict, interthread conflict,
 * user-kernel conflict, invalidation by the OS, and compulsory.
 * Table 8 reports misses *avoided* because another thread prefetched a
 * block. This header provides the shared machinery for both.
 */

#ifndef SMTOS_MEM_MISSCLASS_H
#define SMTOS_MEM_MISSCLASS_H

#include <cstdint>
#include <unordered_map>

#include "common/types.h"
#include "snap/fwd.h"

namespace smtos {

/** Identity of an access for interference accounting. */
struct AccessInfo
{
    ThreadId thread = invalidThread;
    Mode mode = Mode::User;
    CtxId ctx = invalidCtx;

    /** PAL references are accounted as kernel in the paper's tables. */
    bool isKernel() const { return mode != Mode::User; }
};

/** Why a miss happened (the paper's five conflict rows). */
enum class MissCause : std::uint8_t
{
    Compulsory = 0,     ///< first ever reference to the block
    Intrathread,        ///< evicted earlier by the same thread, same mode
    Interthread,        ///< evicted by a different thread, same mode class
    UserKernel,         ///< evicted by the other privilege class
    OsInvalidation,     ///< discarded by an explicit OS flush/invalidate
};

/** Number of MissCause values. */
constexpr int numMissCauses = 5;

/** Human-readable cause label matching the paper's row names. */
const char *missCauseName(MissCause c);

/**
 * Per-structure interference statistics, split by the privilege class
 * of the *missing* (or would-have-missed) reference as in the paper's
 * User / Kernel column pairs.
 */
struct InterferenceStats
{
    /** accesses[1] counts kernel+PAL references, accesses[0] user. */
    std::uint64_t accesses[2] = {0, 0};
    /** misses by privilege class of the missing reference. */
    std::uint64_t misses[2] = {0, 0};
    /** cause[missing class][MissCause]. */
    std::uint64_t cause[2][numMissCauses] = {{0}, {0}};
    /**
     * Misses avoided by constructive sharing:
     * avoided[accessor class][filler class].
     */
    std::uint64_t avoided[2][2] = {{0, 0}, {0, 0}};

    std::uint64_t totalAccesses() const { return accesses[0] + accesses[1]; }
    std::uint64_t totalMisses() const { return misses[0] + misses[1]; }

    void reset() { *this = InterferenceStats(); }
};

/**
 * Tracks, for every block address ever evicted from a structure, who
 * evicted it, so the next miss on that block can be classified.
 */
class MissClassifier
{
  public:
    /**
     * Classify a miss by @p who on @p blockAddr. Returns Compulsory when
     * the block has never been resident.
     */
    MissCause classify(Addr blockAddr, const AccessInfo &who) const;

    /** Record that @p who evicted @p blockAddr (capacity/conflict). */
    void recordEviction(Addr blockAddr, const AccessInfo &who);

    /** Record that the OS invalidated @p blockAddr via an explicit op. */
    void recordInvalidation(Addr blockAddr);

    /** Number of distinct blocks tracked (for tests). */
    std::size_t trackedBlocks() const { return evictors_.size(); }

    void clear() { evictors_.clear(); }

    static constexpr std::uint32_t snapVersion = 1;
    void save(Snapshotter &sp) const;
    void load(Restorer &rs);

  private:
    struct Evictor
    {
        ThreadId thread;
        bool kernel;
        bool byInvalidation;
    };

    std::unordered_map<Addr, Evictor> evictors_;
};

} // namespace smtos

#endif // SMTOS_MEM_MISSCLASS_H
