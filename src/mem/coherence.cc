#include "mem/coherence.h"

#include <algorithm>

#include "mem/hierarchy.h"
#include "snap/snapshot.h"

namespace smtos {

Cycle
CoherenceHub::onWrite(int who, Addr paddr)
{
    Cycle extra = 0;
    bool clean_sharers = false;
    bool dirty_remote = false;
    for (int i = 0; i < numCores(); ++i) {
        if (i == who)
            continue;
        Hierarchy *h = cores_[static_cast<std::size_t>(i)];
        ++stats_.snoopProbes;
        if (h->l1d().probe(paddr)) {
            if (h->l1d().snoopInvalidate(paddr)) {
                dirty_remote = true;
                ++stats_.interventionWritebacks;
                extra = std::max(extra, interventionLatency);
            } else {
                clean_sharers = true;
                extra = std::max(extra, upgradeLatency);
            }
            ++stats_.invalidations;
        }
        // Stores to code pages: stale instruction copies go too.
        if (h->l1i().probe(paddr)) {
            h->l1i().snoopInvalidate(paddr);
            ++stats_.invalidations;
            clean_sharers = true;
            extra = std::max(extra, upgradeLatency);
        }
    }
    if (clean_sharers && !dirty_remote)
        ++stats_.upgrades;
    return extra;
}

Cycle
CoherenceHub::onReadMiss(int who, Addr paddr)
{
    Cycle extra = 0;
    for (int i = 0; i < numCores(); ++i) {
        if (i == who)
            continue;
        Hierarchy *h = cores_[static_cast<std::size_t>(i)];
        ++stats_.snoopProbes;
        if (h->l1d().snoopDowngrade(paddr)) {
            ++stats_.downgrades;
            ++stats_.interventionWritebacks;
            extra = std::max(extra, interventionLatency);
        }
    }
    return extra;
}

void
CoherenceHub::dmaInvalidate(Addr paddr)
{
    for (Hierarchy *h : cores_)
        h->l1d().invalidateBlock(paddr);
}

void
CoherenceHub::save(Snapshotter &sp) const
{
    sp.u32(snapVersion);
    sp.u64(stats_.snoopProbes);
    sp.u64(stats_.invalidations);
    sp.u64(stats_.downgrades);
    sp.u64(stats_.interventionWritebacks);
    sp.u64(stats_.upgrades);
}

void
CoherenceHub::load(Restorer &rs)
{
    smtos_assert(rs.u32() == snapVersion);
    stats_.snoopProbes = rs.u64();
    stats_.invalidations = rs.u64();
    stats_.downgrades = rs.u64();
    stats_.interventionWritebacks = rs.u64();
    stats_.upgrades = rs.u64();
}

} // namespace smtos
