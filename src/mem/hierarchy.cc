#include "mem/hierarchy.h"

#include <algorithm>

#include "mem/coherence.h"

namespace smtos {

Hierarchy::Hierarchy(const HierarchyParams &params)
    : params_(params),
      l1i_(params.l1i),
      l1d_(params.l1d),
      l2_(params.l2),
      l1Mshr_("L1-MSHR", params.l1MshrEntries),
      l2Mshr_("L2-MSHR", params.l2MshrEntries),
      storeBuffer_(params.storeBufferEntries),
      l1l2Bus_("L1-L2", params.l1l2BusBytesPerCycle,
               params.l1l2BusLatency),
      memBus_("memory", params.memBusBytesPerCycle,
              params.memBusLatency),
      memctrl_(params.dramLatency, params.dram)
{
}

MemResult
Hierarchy::missPath(Cache &l1, Addr paddr, const AccessInfo &who,
                    bool is_write, Cycle now, bool is_ifetch)
{
    MemResult res;
    const Addr block = paddr / static_cast<Addr>(l1.params().lineBytes);
    Hierarchy &sh = shared();

    MshrGrant grant = l1Mshr_.request(block, now);
    if (grant.merged) {
        res.readyAt = std::max(grant.mergedReadyAt,
                               now + params_.l1HitLatency);
        return res;
    }
    Cycle start = grant.startAt;
    // Snoop the other cores before the shared level answers: a remote
    // Modified copy must write back first (intervention).
    if (hub_ && !is_write)
        start += hub_->onReadMiss(coreId_, paddr);

    // L2 lookup (address travels the L1-L2 bus; response carries the
    // line back over the same bus).
    const Cycle l2_done = start + params_.l2Latency;
    CacheOutcome l2_out = sh.l2_.access(paddr, who, is_write);
    Cycle fill_at;
    if (l2_out.hit) {
        res.l2Hit = true;
        fill_at = sh.l1l2Bus_.transfer(l2_done, l1.params().lineBytes);
    } else {
        MshrGrant g2 = sh.l2Mshr_.request(
            paddr / static_cast<Addr>(sh.l2_.params().lineBytes),
            l2_done);
        Cycle l2_ready;
        if (g2.merged) {
            l2_ready = std::max(g2.mergedReadyAt, l2_done);
        } else {
            const Cycle req = sh.memBus_.transfer(g2.startAt, 8);
            const Cycle mem_done = sh.memctrl_.access(paddr, who, req);
            l2_ready = sh.memBus_.transfer(mem_done,
                                           sh.l2_.params().lineBytes);
            sh.l2Mshr_.complete(
                paddr / static_cast<Addr>(sh.l2_.params().lineBytes),
                g2.startAt, l2_ready);
            sh.l2missIntegral_ +=
                static_cast<double>(l2_ready - g2.startAt);
            if (l2_out.dirtyEviction)
                sh.memBus_.transfer(l2_ready,
                                    sh.l2_.params().lineBytes);
        }
        fill_at = sh.l1l2Bus_.transfer(l2_ready, l1.params().lineBytes);
    }

    res.readyAt = fill_at + params_.l1FillPenalty;
    l1Mshr_.complete(block, start, res.readyAt);
    if (is_ifetch)
        imissIntegral_ += static_cast<double>(res.readyAt - start);
    else
        dmissIntegral_ += static_cast<double>(res.readyAt - start);
    return res;
}

MemResult
Hierarchy::data(Addr paddr, const AccessInfo &who, bool is_write,
                Cycle now)
{
    if (params_.filterPrivileged && who.isKernel()) {
        MemResult res;
        res.l1Hit = true;
        res.readyAt = now + params_.l1HitLatency;
        return res;
    }

    CacheOutcome out = l1d_.access(paddr, who, is_write);
    if (out.hit) {
        MemResult res;
        res.l1Hit = true;
        const Cycle fill = l1Mshr_.hitUnderFill(
            paddr / static_cast<Addr>(l1d_.params().lineBytes), now);
        res.readyAt = std::max(now + params_.l1HitLatency, fill);
        // A store hitting a clean (Shared) line must still own it:
        // invalidate remote copies and pay the upgrade broadcast.
        if (hub_ && is_write)
            res.readyAt += hub_->onWrite(coreId_, paddr);
        return res;
    }
    if (out.dirtyEviction)
        shared().l1l2Bus_.transfer(now, l1d_.params().lineBytes);
    if (is_write) {
        // Store misses allocate without fetching the line from
        // memory (write-validate, as the Alpha's write buffers and
        // write hints achieve): the L2 is probed/allocated for tag
        // state, but no DRAM round trip or MSHR entry is consumed.
        // The store buffer hides the L2 write latency.
        shared().l2_.access(paddr, who, true);
        MemResult res;
        res.readyAt = now + params_.l2Latency;
        if (hub_)
            res.readyAt += hub_->onWrite(coreId_, paddr);
        return res;
    }
    return missPath(l1d_, paddr, who, is_write, now, false);
}

MemResult
Hierarchy::fetch(Addr paddr, const AccessInfo &who, Cycle now)
{
    if (params_.filterPrivileged && who.isKernel()) {
        MemResult res;
        res.l1Hit = true;
        res.readyAt = now + params_.l1HitLatency;
        return res;
    }

    CacheOutcome out = l1i_.access(paddr, who, false);
    if (out.hit) {
        MemResult res;
        res.l1Hit = true;
        const Cycle fill = l1Mshr_.hitUnderFill(
            paddr / static_cast<Addr>(l1i_.params().lineBytes), now);
        res.readyAt = std::max(now + params_.l1HitLatency, fill);
        return res;
    }
    return missPath(l1i_, paddr, who, false, now, true);
}

void
Hierarchy::warmFetch(Addr paddr, const AccessInfo &who)
{
    if (params_.filterPrivileged && who.isKernel())
        return;
    if (!l1i_.access(paddr, who, false).hit)
        shared().l2_.access(paddr, who, false);
}

void
Hierarchy::warmData(Addr paddr, const AccessInfo &who, bool is_write)
{
    if (params_.filterPrivileged && who.isKernel())
        return;
    if (!l1d_.access(paddr, who, is_write).hit)
        shared().l2_.access(paddr, who, is_write);
}

Cycle
Hierarchy::retireStore(Addr paddr, const AccessInfo &who, Cycle now)
{
    MemResult res = data(paddr, who, true, now);
    return storeBuffer_.push(now, res.readyAt);
}

void
Hierarchy::flushIcache()
{
    l1i_.invalidateAll();
}

void
Hierarchy::flushDcache()
{
    l1d_.invalidateAll();
}

void
Hierarchy::dmaWrite(Addr paddr, int bytes)
{
    Hierarchy &sh = shared();
    const int line = sh.l2_.params().lineBytes;
    for (Addr a = paddr; a < paddr + static_cast<Addr>(bytes);
         a += static_cast<Addr>(line)) {
        sh.l2_.invalidateBlock(a);
        if (hub_)
            hub_->dmaInvalidate(a);
        else
            l1d_.invalidateBlock(a);
    }
}

} // namespace smtos
