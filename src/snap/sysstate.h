/**
 * @file
 * Whole-machine snapshot orchestration.
 *
 * A snapshot artifact is a config section (owned by the harness — it
 * holds everything needed to deterministically rebuild the System,
 * workloads, and fault plan from scratch) followed by the machine
 * sections this module owns:
 *
 *   "PHYS"  physical memory allocator
 *   "KERN"  kernel: scheduler, processes + thread state + address
 *           spaces, sockets, devices, buffer cache, network + clients
 *   "PIPE"  pipeline: windows, rename state, predictor, TLBs, stats
 *   "HIER"  memory hierarchy: caches, MSHRs, store buffers, bus, DRAM
 *   "FLTP"  fault plan RNG streams and log (flag + optional body)
 *
 * The kernel section loads before the pipeline section so thread-id
 * to ThreadState resolution finds restored processes. Restore ends
 * with Pipeline::resyncThreads() so an attached retire observer
 * (co-simulation) re-bases on the restored architectural state.
 */

#ifndef SMTOS_SNAP_SYSSTATE_H
#define SMTOS_SNAP_SYSSTATE_H

#include "snap/fwd.h"

namespace smtos {

class System;
class FaultPlan;

/**
 * Deterministic image registry of @p sys: the kernel image first,
 * then every distinct user image in pid order. Both the save and the
 * load side rebuild the identical registry from their own System.
 */
SnapImages collectImages(System &sys);

/** Append the machine sections (PHYS..FLTP) of @p sys to @p sp. */
void saveMachineSections(Snapshotter &sp, System &sys, FaultPlan *plan);

/**
 * Restore the machine sections over a freshly built-and-started @p sys
 * (workloads installed, same fault plan shape attached, start() run).
 */
void loadMachineSections(Restorer &rs, System &sys, FaultPlan *plan);

} // namespace smtos

#endif // SMTOS_SNAP_SYSSTATE_H
