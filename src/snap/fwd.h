/**
 * @file
 * Forward declarations for the snapshot subsystem, so stateful
 * classes can declare save(Snapshotter&)/load(Restorer&) members
 * without pulling the serializer into every header.
 */

#ifndef SMTOS_SNAP_FWD_H
#define SMTOS_SNAP_FWD_H

namespace smtos {

class Snapshotter;
class Restorer;
class SnapImages;

} // namespace smtos

#endif // SMTOS_SNAP_FWD_H
