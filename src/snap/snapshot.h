/**
 * @file
 * Versioned deterministic snapshot artifact framing.
 *
 * A snapshot is a single byte artifact:
 *
 *     magic "SMTOSNP1" (8)  | u32 formatVersion | u64 payloadBytes
 *     u64 fnv1a(payload)    | payload
 *
 * and the payload is a strict sequence of sections, each
 *
 *     u32 fourcc | u32 sectionVersion | u64 byteLen | bytes
 *
 * written and read in the same fixed order. The Restorer validates
 * magic, format version, length and checksum at construction and
 * reports failure through ok()/error() — corruption and version skew
 * are rejected gracefully, before any state is touched. After that
 * gate, framing violations are programming errors and assert.
 *
 * Values are stored little-endian-of-host (snapshots are same-host
 * artifacts, like SimOS checkpoints); doubles round-trip by bit
 * pattern so accumulated statistics restore bit-identically.
 */

#ifndef SMTOS_SNAP_SNAPSHOT_H
#define SMTOS_SNAP_SNAPSHOT_H

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"

namespace smtos {

class CodeImage;

/** Artifact magic; the trailing digit is the major format era. */
constexpr char snapshotMagic[8] = {'S', 'M', 'T', 'O', 'S', 'N', 'P',
                                   '1'};

/** Bumped whenever the section list or header layout changes. */
constexpr std::uint32_t snapshotFormatVersion = 1;

/** FNV-1a over the payload; cheap and order-sensitive. */
inline std::uint64_t
snapshotChecksum(const std::uint8_t *p, std::size_t n)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

/** Pack a 4-char section tag into its on-disk u32. */
inline std::uint32_t
sectionTag(const char (&fourcc)[5])
{
    return static_cast<std::uint32_t>(
               static_cast<unsigned char>(fourcc[0])) |
           static_cast<std::uint32_t>(
               static_cast<unsigned char>(fourcc[1]))
               << 8 |
           static_cast<std::uint32_t>(
               static_cast<unsigned char>(fourcc[2]))
               << 16 |
           static_cast<std::uint32_t>(
               static_cast<unsigned char>(fourcc[3]))
               << 24;
}

/** Append-only writer producing the snapshot artifact. */
class Snapshotter
{
  public:
    Snapshotter() { buf_.reserve(1 << 16); }

    void
    u8(std::uint8_t v)
    {
        buf_.push_back(v);
    }

    void u16(std::uint16_t v) { raw(&v, sizeof v); }
    void u32(std::uint32_t v) { raw(&v, sizeof v); }
    void u64(std::uint64_t v) { raw(&v, sizeof v); }
    void i64(std::int64_t v) { raw(&v, sizeof v); }
    void i32(std::int32_t v) { raw(&v, sizeof v); }
    void b(bool v) { u8(v ? 1 : 0); }

    /** Doubles by bit pattern: restored sums stay bit-identical. */
    void
    f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

    void
    bytes(const void *p, std::size_t n)
    {
        raw(p, n);
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        raw(s.data(), s.size());
    }

    /** Open a section; sections must not nest. */
    void
    beginSection(const char (&fourcc)[5], std::uint32_t version)
    {
        smtos_assert(lenAt_ == npos);
        u32(sectionTag(fourcc));
        u32(version);
        lenAt_ = buf_.size();
        u64(0); // patched by endSection()
    }

    void
    endSection()
    {
        smtos_assert(lenAt_ != npos);
        const std::uint64_t len = buf_.size() - lenAt_ - 8;
        std::memcpy(buf_.data() + lenAt_, &len, sizeof len);
        lenAt_ = npos;
    }

    /** Seal the payload into the final artifact. */
    std::vector<std::uint8_t>
    finish() const
    {
        smtos_assert(lenAt_ == npos);
        std::vector<std::uint8_t> out;
        out.reserve(buf_.size() + 28);
        out.insert(out.end(), snapshotMagic, snapshotMagic + 8);
        auto push = [&out](const void *p, std::size_t n) {
            const auto *b = static_cast<const std::uint8_t *>(p);
            out.insert(out.end(), b, b + n);
        };
        const std::uint32_t fv = snapshotFormatVersion;
        push(&fv, sizeof fv);
        const std::uint64_t n = buf_.size();
        push(&n, sizeof n);
        const std::uint64_t sum = snapshotChecksum(buf_.data(), n);
        push(&sum, sizeof sum);
        out.insert(out.end(), buf_.begin(), buf_.end());
        return out;
    }

  private:
    static constexpr std::size_t npos = ~std::size_t{0};

    void
    raw(const void *p, std::size_t n)
    {
        const auto *b = static_cast<const std::uint8_t *>(p);
        buf_.insert(buf_.end(), b, b + n);
    }

    std::vector<std::uint8_t> buf_;
    std::size_t lenAt_ = npos;
};

/** Cursor over a validated artifact payload. */
class Restorer
{
  public:
    explicit Restorer(std::vector<std::uint8_t> artifact)
        : buf_(std::move(artifact))
    {
        validate();
    }

    /** False when the artifact was rejected; see error(). */
    bool ok() const { return error_.empty(); }
    const std::string &error() const { return error_; }

    std::uint8_t
    u8()
    {
        need(1);
        return buf_[pos_++];
    }

    std::uint16_t u16() { return rawAs<std::uint16_t>(); }
    std::uint32_t u32() { return rawAs<std::uint32_t>(); }
    std::uint64_t u64() { return rawAs<std::uint64_t>(); }
    std::int64_t i64() { return rawAs<std::int64_t>(); }
    std::int32_t i32() { return rawAs<std::int32_t>(); }
    bool b() { return u8() != 0; }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

    void
    bytes(void *p, std::size_t n)
    {
        need(n);
        std::memcpy(p, buf_.data() + pos_, n);
        pos_ += n;
    }

    std::string
    str()
    {
        const std::uint64_t n = u64();
        need(n);
        std::string s(reinterpret_cast<const char *>(buf_.data()) +
                          pos_,
                      n);
        pos_ += n;
        return s;
    }

    /** Enter the next section, which must carry @p fourcc; returns
     *  its stored version. */
    std::uint32_t
    enterSection(const char (&fourcc)[5])
    {
        smtos_assert(ok());
        smtos_assert(sectionEnd_ == 0);
        const std::uint32_t tag = u32();
        smtos_assert(tag == sectionTag(fourcc));
        const std::uint32_t version = u32();
        const std::uint64_t len = u64();
        sectionEnd_ = pos_ + len;
        smtos_assert(sectionEnd_ <= buf_.size());
        return version;
    }

    void
    leaveSection()
    {
        smtos_assert(sectionEnd_ != 0);
        smtos_assert(pos_ == sectionEnd_);
        sectionEnd_ = 0;
    }

    /** Skip the unread remainder of the current section (a reader
     *  that does not want the section's optional payload). */
    void
    skipRest()
    {
        smtos_assert(sectionEnd_ != 0);
        pos_ = sectionEnd_;
    }

    /** True when the whole payload has been consumed. Valid only
     *  between sections; lets readers detect optional trailing
     *  sections that older artifacts do not carry. */
    bool
    atEnd() const
    {
        smtos_assert(sectionEnd_ == 0);
        return pos_ == buf_.size();
    }

    /** Non-consuming peek at the next section's tag. Valid only
     *  between sections; with several *optional* trailing sections,
     *  atEnd() alone cannot tell a reader which one comes next. */
    bool
    nextSectionIs(const char (&fourcc)[5]) const
    {
        smtos_assert(sectionEnd_ == 0);
        if (pos_ + 4 > buf_.size())
            return false;
        std::uint32_t tag;
        std::memcpy(&tag, buf_.data() + pos_, sizeof tag);
        return tag == sectionTag(fourcc);
    }

  private:
    void
    validate()
    {
        constexpr std::size_t headerBytes = 8 + 4 + 8 + 8;
        if (buf_.size() < headerBytes) {
            error_ = "snapshot rejected: truncated header";
            return;
        }
        if (std::memcmp(buf_.data(), snapshotMagic, 8) != 0) {
            error_ = "snapshot rejected: bad magic";
            return;
        }
        std::uint32_t fv;
        std::memcpy(&fv, buf_.data() + 8, sizeof fv);
        if (fv != snapshotFormatVersion) {
            error_ = "snapshot rejected: format version " +
                     std::to_string(fv) + " (supported " +
                     std::to_string(snapshotFormatVersion) + ")";
            return;
        }
        std::uint64_t payload;
        std::memcpy(&payload, buf_.data() + 12, sizeof payload);
        if (buf_.size() - headerBytes != payload) {
            error_ = "snapshot rejected: payload length mismatch";
            return;
        }
        std::uint64_t sum;
        std::memcpy(&sum, buf_.data() + 20, sizeof sum);
        if (snapshotChecksum(buf_.data() + headerBytes, payload) !=
            sum) {
            error_ = "snapshot rejected: checksum mismatch";
            return;
        }
        pos_ = headerBytes;
    }

    template <typename T>
    T
    rawAs()
    {
        need(sizeof(T));
        T v;
        std::memcpy(&v, buf_.data() + pos_, sizeof v);
        pos_ += sizeof v;
        return v;
    }

    void
    need(std::size_t n)
    {
        smtos_assert(pos_ + n <= buf_.size());
        smtos_assert(sectionEnd_ == 0 || pos_ + n <= sectionEnd_);
    }

    std::vector<std::uint8_t> buf_;
    std::size_t pos_ = 0;
    std::size_t sectionEnd_ = 0;
    std::string error_;
};

/**
 * Deterministic registry of every code image a run can execute, so
 * `const Instr *` and `const CodeImage *` serialize as stable small
 * ids. Both sides build it the same way: kernel image first, then
 * user images deduplicated in pid order.
 */
class SnapImages
{
  public:
    void
    add(const CodeImage *img)
    {
        if (!img)
            return;
        for (const CodeImage *have : images_)
            if (have == img)
                return;
        images_.push_back(img);
    }

    int
    idOf(const CodeImage *img) const
    {
        for (std::size_t i = 0; i < images_.size(); ++i)
            if (images_[i] == img)
                return static_cast<int>(i);
        smtos_fatal("snapshot: code image not in registry");
    }

    const CodeImage *
    byId(int id) const
    {
        smtos_assert(id >= 0 &&
                     id < static_cast<int>(images_.size()));
        return images_[static_cast<std::size_t>(id)];
    }

    int count() const { return static_cast<int>(images_.size()); }

  private:
    std::vector<const CodeImage *> images_;
};

} // namespace smtos

#endif // SMTOS_SNAP_SNAPSHOT_H
