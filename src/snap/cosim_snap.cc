/**
 * @file
 * Snapshot of the co-simulation oracle.
 *
 * A cosim session's reference cores are architectural state the
 * machine sections cannot reconstruct: each RefCore sits at the
 * last-retired point of its thread, while the live ThreadState cursor
 * is at the fetch point, ahead by everything in flight. Serializing
 * the oracle (per-thread reference cores plus their queued-but-not-
 * yet-applied OS state syncs) lets a snapshot taken mid-flight resume
 * into a cosim session with verification continuing seamlessly at the
 * first post-restore retirement.
 *
 * The per-thread "recent" report windows are deliberately not saved:
 * they only pad the divergence report, and restoring them would drag
 * RetireEvent/Instr references into the format for cosmetics.
 */

#include "harness/cosim.h"
#include "ref/refcore.h"
#include "snap/snapshot.h"

namespace smtos {

namespace {

constexpr std::uint32_t snapVersion = 1;

void
tag(Restorer &rs, std::uint32_t want)
{
    const std::uint32_t got = rs.u32();
    smtos_assert(got == want);
}

void
syncStateOut(Snapshotter &sp, const RefSyncState &s,
             const SnapImages &images)
{
    sp.bytes(&s.cursor, sizeof s.cursor); // Cursor: trivially copyable
    sp.u64(s.iprs.copySrc);
    sp.u64(s.iprs.copyDst);
    sp.u32(s.iprs.copyTrip);
    sp.u32(s.iprs.serviceTrip);
    sp.u32(s.iprs.intrTrip);
    sp.b(s.iprs.copySrcPhysical);
    sp.b(s.iprs.copyDstPhysical);
    for (const MemRegion &r : s.regions) {
        sp.u64(r.base);
        sp.u64(r.bytes);
        sp.b(r.sharedHot);
    }
    sp.i32(s.userImage ? images.idOf(s.userImage) : -1);
    sp.b(s.isIdleThread);
}

RefSyncState
syncStateIn(Restorer &rs, const SnapImages &images)
{
    RefSyncState s;
    rs.bytes(&s.cursor, sizeof s.cursor);
    s.iprs.copySrc = rs.u64();
    s.iprs.copyDst = rs.u64();
    s.iprs.copyTrip = rs.u32();
    s.iprs.serviceTrip = rs.u32();
    s.iprs.intrTrip = rs.u32();
    s.iprs.copySrcPhysical = rs.b();
    s.iprs.copyDstPhysical = rs.b();
    for (MemRegion &r : s.regions) {
        r.base = rs.u64();
        r.bytes = rs.u64();
        r.sharedHot = rs.b();
    }
    const int img = rs.i32();
    s.userImage = img >= 0 ? images.byId(img) : nullptr;
    s.isIdleThread = rs.b();
    return s;
}

} // namespace

void
RefCore::save(Snapshotter &sp, const SnapImages &images) const
{
    sp.u32(snapVersion);
    sp.bytes(&cur_, sizeof cur_); // Cursor: trivially copyable
    sp.u64(iprs_.copySrc);
    sp.u64(iprs_.copyDst);
    sp.u32(iprs_.copyTrip);
    sp.u32(iprs_.serviceTrip);
    sp.u32(iprs_.intrTrip);
    sp.b(iprs_.copySrcPhysical);
    sp.b(iprs_.copyDstPhysical);
    for (const MemRegion &r : regions_) {
        sp.u64(r.base);
        sp.u64(r.bytes);
        sp.b(r.sharedHot);
    }
    sp.i32(is_.user ? images.idOf(is_.user) : -1);
    sp.b(isIdle_);
    sp.b(live_);
    sp.b(waitingOs_);
    sp.u64(executed_);
    sp.bytes(regs_.data(), regs_.size() * sizeof(std::uint64_t));
}

void
RefCore::load(Restorer &rs, const SnapImages &images,
              const CodeImage *kernel_image)
{
    tag(rs, snapVersion);
    rs.bytes(&cur_, sizeof cur_);
    iprs_.copySrc = rs.u64();
    iprs_.copyDst = rs.u64();
    iprs_.copyTrip = rs.u32();
    iprs_.serviceTrip = rs.u32();
    iprs_.intrTrip = rs.u32();
    iprs_.copySrcPhysical = rs.b();
    iprs_.copyDstPhysical = rs.b();
    for (MemRegion &r : regions_) {
        r.base = rs.u64();
        r.bytes = rs.u64();
        r.sharedHot = rs.b();
    }
    const int img = rs.i32();
    is_ = ImageSet{img >= 0 ? images.byId(img) : nullptr,
                   kernel_image};
    isIdle_ = rs.b();
    live_ = rs.b();
    waitingOs_ = rs.b();
    executed_ = rs.u64();
    rs.bytes(regs_.data(), regs_.size() * sizeof(std::uint64_t));
}

void
Cosim::save(Snapshotter &sp, const SnapImages &images) const
{
    // A diverged oracle is a failed run; snapshotting it is a bug.
    smtos_assert(!diverged_);
    sp.u32(snapVersion);
    sp.u64(checked_);
    sp.u64(syncs_);
    sp.u64(threads_.size()); // std::map: saved in ascending tid order
    for (const auto &[tid, tc] : threads_) {
        sp.i32(tid);
        tc.ref.save(sp, images);
        sp.u64(tc.pending.size());
        for (const PendingSync &ps : tc.pending) {
            sp.u64(ps.firstSeq);
            syncStateOut(sp, ps.state, images);
        }
    }
}

void
Cosim::load(Restorer &rs, const SnapImages &images)
{
    tag(rs, snapVersion);
    // Drop everything observed during boot and restore of the host
    // session (thread binds, resyncThreads) — the artifact's oracle
    // state supersedes it wholesale.
    threads_.clear();
    diverged_ = false;
    report_.clear();
    checked_ = rs.u64();
    syncs_ = rs.u64();
    const std::uint64_t n = rs.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        const ThreadId tid = rs.i32();
        ThreadChecker &tc = threads_[tid];
        tc.ref.load(rs, images, kernelImage_);
        const std::uint64_t np = rs.u64();
        for (std::uint64_t j = 0; j < np; ++j) {
            PendingSync ps;
            ps.firstSeq = rs.u64();
            ps.state = syncStateIn(rs, images);
            tc.pending.push_back(ps);
        }
    }
}

} // namespace smtos
