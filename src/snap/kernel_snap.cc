/**
 * @file
 * Kernel snapshot/restore: scheduler and process state, per-thread
 * architected state and address spaces, the socket/connection layer,
 * device timing, the buffer cache, and the attached network + client
 * population.
 *
 * Restore contract: the kernel was freshly booted with the identical
 * deterministic configuration (same Params, same createProcess calls
 * in the same order, attachFaults with the same plan shape, then
 * start()), so procs_ holds the same processes at the same pids and
 * all structural sizes match. load() then overwrites every mutable
 * field the boot path initialized.
 */

#include <algorithm>

#include "kernel/kernel.h"
#include "snap/snapshot.h"

namespace smtos {

namespace {

// Field order must match packetOut/packetIn in snap/state.cc (the
// Network section uses those); both sides of each section pair live in
// one file, so the duplication is only a consistency convention.
void
pktOut(Snapshotter &sp, const Packet &p)
{
    sp.i32(p.client);
    sp.i32(p.conn);
    sp.u32(p.bytes);
    sp.b(p.open);
    sp.b(p.fin);
    sp.i32(p.fileId);
    sp.u64(p.mbuf);
    sp.u32(p.reqSeq);
}

Packet
pktIn(Restorer &rs)
{
    Packet p;
    p.client = rs.i32();
    p.conn = rs.i32();
    p.bytes = rs.u32();
    p.open = rs.b();
    p.fin = rs.b();
    p.fileId = rs.i32();
    p.mbuf = rs.u64();
    p.reqSeq = rs.u32();
    return p;
}

void
threadStateOut(Snapshotter &sp, const ThreadState &ts)
{
    // id / isIdleThread / space / userImage are rebuilt by the boot
    // path; only the mutable architected state round-trips.
    sp.bytes(&ts.cursor, sizeof ts.cursor); // Cursor: trivially copyable
    sp.u64(ts.iprs.copySrc);
    sp.u64(ts.iprs.copyDst);
    sp.u32(ts.iprs.copyTrip);
    sp.u32(ts.iprs.serviceTrip);
    sp.u32(ts.iprs.intrTrip);
    sp.b(ts.iprs.copySrcPhysical);
    sp.b(ts.iprs.copyDstPhysical);
    for (const MemRegion &r : ts.regions) {
        sp.u64(r.base);
        sp.u64(r.bytes);
        sp.b(r.sharedHot);
    }
    sp.u64(ts.seed);
    sp.bytes(ts.archRegs.data(),
             ts.archRegs.size() * sizeof(std::uint64_t));
}

void
threadStateIn(Restorer &rs, ThreadState &ts)
{
    rs.bytes(&ts.cursor, sizeof ts.cursor);
    ts.iprs.copySrc = rs.u64();
    ts.iprs.copyDst = rs.u64();
    ts.iprs.copyTrip = rs.u32();
    ts.iprs.serviceTrip = rs.u32();
    ts.iprs.intrTrip = rs.u32();
    ts.iprs.copySrcPhysical = rs.b();
    ts.iprs.copyDstPhysical = rs.b();
    for (MemRegion &r : ts.regions) {
        r.base = rs.u64();
        r.bytes = rs.u64();
        r.sharedHot = rs.b();
    }
    ts.seed = rs.u64();
    rs.bytes(ts.archRegs.data(),
             ts.archRegs.size() * sizeof(std::uint64_t));
}

void
connOut(Snapshotter &sp, const Connection &c)
{
    sp.b(c.inUse);
    sp.i32(c.client);
    sp.i32(c.fileId);
    sp.u32(c.reqBytes);
    sp.u32(c.recvAvail);
    sp.u64(c.mbuf);
    sp.i32(c.owner);
    sp.u32(c.reqSeq);
}

void
connIn(Restorer &rs, Connection &c)
{
    c.inUse = rs.b();
    c.client = rs.i32();
    c.fileId = rs.i32();
    c.reqBytes = rs.u32();
    c.recvAvail = rs.u32();
    c.mbuf = rs.u64();
    c.owner = rs.i32();
    c.reqSeq = rs.u32();
}

std::uint32_t
tag(Restorer &rs, std::uint32_t want)
{
    const std::uint32_t v = rs.u32();
    smtos_assert(v == want);
    return v;
}

} // namespace

void
Kernel::save(Snapshotter &sp, const SnapImages &images) const
{
    sp.u32(snapVersion);

    // Device/scheduler timing and allocation cursors.
    sp.i32(nextAsn_);
    sp.u64(mbufCursor_);
    sp.u64(nextNicAt_);
    sp.u64(nowCycle_);
    sp.u64(tlbLockFreeAt_);
    sp.u64(nextTimerAt_.size());
    for (const Cycle t : nextTimerAt_)
        sp.u64(t);
    sp.i32(nextIntrCtx_);
    sp.u64(rng_.rawState());

    // Counters.
    mmEntries_.save(sp);
    syscalls_.save(sp);
    sp.u64(requestsServed_);
    sp.u64(diskReads_);
    sp.u64(switches_);
    sp.u64(wraparounds_);
    sp.u64(synDrops_);
    sp.u64(backlogDrops_);
    sp.u64(mceKills_);
    sp.u64(faultLogEmitted_);

    kernelSpace_->save(sp);

    // Processes (pids are dense indexes; the rebuild recreates the
    // same set in the same order).
    sp.u64(procs_.size());
    for (const auto &up : procs_) {
        const Process &p = *up;
        sp.u8(static_cast<std::uint8_t>(p.state));
        sp.i32(p.lastCtx);
        sp.u16(p.waitChan);
        sp.i32(p.runningOn);
        sp.u16(p.pendingSyscall);
        sp.u32(p.mceHits);
        sp.i32(p.conn);
        sp.b(p.reqConsumed);
        sp.u32(p.fileBytesLeft);
        sp.u32(p.filePage);
        sp.u32(p.lastChunk);
        sp.u64(p.requestsServed);
        pktOut(sp, p.txPacket);
        threadStateOut(sp, p.ts);
        sp.b(p.space != nullptr);
        if (p.space)
            p.space->save(sp);
    }

    // Scheduler queues and bindings, as pid lists (-1 = null).
    auto pidOf = [](const Process *p) {
        return p ? p->pid : -1;
    };
    sp.u64(runq_.size());
    for (const Process *p : runq_)
        sp.i32(pidOf(p));
    sp.u64(curProc_.size());
    for (const Process *p : curProc_)
        sp.i32(pidOf(p));
    sp.u64(idleForCtx_.size());
    for (const Process *p : idleForCtx_)
        sp.i32(pidOf(p));
    sp.u64(waiters_.size());
    for (const auto &chan : waiters_) {
        sp.u64(chan.size());
        for (const Process *p : chan)
            sp.i32(pidOf(p));
    }

    // Socket layer and devices.
    sp.u64(conns_.size());
    for (const Connection &c : conns_)
        connOut(sp, c);
    sp.u64(acceptQ_.size());
    for (const int id : acceptQ_)
        sp.i32(id);
    sp.u64(nicRing_.size());
    for (const Packet &p : nicRing_)
        pktOut(sp, p);
    sp.u64(protoQ_.size());
    for (const Packet &p : protoQ_)
        pktOut(sp, p);

    // Buffer cache, sorted for deterministic artifact bytes.
    {
        std::vector<std::pair<std::uint64_t, Frame>> entries(
            bufcache_.begin(), bufcache_.end());
        std::sort(entries.begin(), entries.end());
        sp.u64(entries.size());
        for (const auto &[k, v] : entries) {
            sp.u64(k);
            sp.u64(v);
        }
    }

    // Shared text frames, keyed by deterministic image id.
    {
        std::vector<std::pair<int, const std::vector<Frame> *>> entries;
        for (const auto &[img, frames] : sharedText_)
            entries.emplace_back(images.idOf(img), &frames);
        std::sort(entries.begin(), entries.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        sp.u64(entries.size());
        for (const auto &[id, frames] : entries) {
            sp.i32(id);
            sp.u64(frames->size());
            for (const Frame f : *frames)
                sp.u64(f);
        }
    }

    net_.save(sp);
    sp.b(clients_ != nullptr);
    if (clients_)
        clients_->save(sp);

    // SMP appendix: only a multicore kernel writes it, so cores = 1
    // KERN bytes — the bit-identity contract — never change. Sizes
    // are structural (set by attachPipes on the identical rebuild).
    if (numCores() > 1) {
        for (const auto &rq : runqsN_) {
            sp.u64(rq.size());
            for (const Process *p : rq)
                sp.i32(pidOf(p));
        }
        for (const auto &pq : protoQsN_) {
            sp.u64(pq.size());
            for (const Packet &p : pq)
                pktOut(sp, p);
        }
        for (const auto &up : procs_)
            sp.i32(up->homeCore);
        auto lockOut = [&sp](const KLock &l) {
            sp.u64(l.freeAt);
            sp.u64(l.acquisitions);
            sp.u64(l.contended);
            sp.u64(l.spinCycles);
            sp.u64(l.holdCycles);
        };
        lockOut(connLock_);
        lockOut(mbufLock_);
        for (const KLock &l : schedLocks_)
            lockOut(l);
        for (const std::uint64_t v : lockSpinByCore_)
            sp.u64(v);
        sp.u64(steals_);
        sp.u64(shootdownIpis_);
        sp.u64(shootdownsDelivered_);
        sp.u64(pendingShootdowns_);
        sp.u64(lastHookCycle_);
    }
}

void
Kernel::load(Restorer &rs, const SnapImages &images)
{
    tag(rs, snapVersion);

    nextAsn_ = rs.i32();
    mbufCursor_ = rs.u64();
    nextNicAt_ = rs.u64();
    nowCycle_ = rs.u64();
    tlbLockFreeAt_ = rs.u64();
    smtos_assert(rs.u64() == nextTimerAt_.size());
    for (Cycle &t : nextTimerAt_)
        t = rs.u64();
    nextIntrCtx_ = rs.i32();
    rng_.setRawState(rs.u64());

    mmEntries_.load(rs);
    syscalls_.load(rs);
    requestsServed_ = rs.u64();
    diskReads_ = rs.u64();
    switches_ = rs.u64();
    wraparounds_ = rs.u64();
    synDrops_ = rs.u64();
    backlogDrops_ = rs.u64();
    mceKills_ = rs.u64();
    faultLogEmitted_ = static_cast<std::size_t>(rs.u64());

    kernelSpace_->load(rs);

    smtos_assert(rs.u64() == procs_.size());
    for (auto &up : procs_) {
        Process &p = *up;
        p.state = static_cast<Process::State>(rs.u8());
        p.lastCtx = rs.i32();
        p.waitChan = rs.u16();
        p.runningOn = rs.i32();
        p.pendingSyscall = rs.u16();
        p.mceHits = rs.u32();
        p.conn = rs.i32();
        p.reqConsumed = rs.b();
        p.fileBytesLeft = rs.u32();
        p.filePage = rs.u32();
        p.lastChunk = rs.u32();
        p.requestsServed = rs.u64();
        p.txPacket = pktIn(rs);
        threadStateIn(rs, p.ts);
        const bool hasSpace = rs.b();
        smtos_assert(hasSpace == (p.space != nullptr));
        if (p.space)
            p.space->load(rs);
    }

    auto byPid = [this](int pid) -> Process * {
        if (pid < 0)
            return nullptr;
        smtos_assert(pid < static_cast<int>(procs_.size()));
        return procs_[static_cast<std::size_t>(pid)].get();
    };
    runq_.clear();
    for (std::uint64_t n = rs.u64(); n > 0; --n)
        runq_.push_back(byPid(rs.i32()));
    smtos_assert(rs.u64() == curProc_.size());
    for (Process *&p : curProc_)
        p = byPid(rs.i32());
    smtos_assert(rs.u64() == idleForCtx_.size());
    for (Process *&p : idleForCtx_)
        p = byPid(rs.i32());
    smtos_assert(rs.u64() == waiters_.size());
    for (auto &chan : waiters_) {
        chan.clear();
        for (std::uint64_t n = rs.u64(); n > 0; --n)
            chan.push_back(byPid(rs.i32()));
    }

    smtos_assert(rs.u64() == conns_.size());
    for (Connection &c : conns_)
        connIn(rs, c);
    acceptQ_.clear();
    for (std::uint64_t n = rs.u64(); n > 0; --n)
        acceptQ_.push_back(rs.i32());
    nicRing_.clear();
    for (std::uint64_t n = rs.u64(); n > 0; --n)
        nicRing_.push_back(pktIn(rs));
    protoQ_.clear();
    for (std::uint64_t n = rs.u64(); n > 0; --n)
        protoQ_.push_back(pktIn(rs));

    bufcache_.clear();
    for (std::uint64_t n = rs.u64(); n > 0; --n) {
        const std::uint64_t k = rs.u64();
        bufcache_[k] = rs.u64();
    }

    sharedText_.clear();
    for (std::uint64_t n = rs.u64(); n > 0; --n) {
        const CodeImage *img = images.byId(rs.i32());
        std::vector<Frame> frames(rs.u64());
        for (Frame &f : frames)
            f = rs.u64();
        sharedText_[img] = std::move(frames);
    }

    net_.load(rs);
    const bool hasClients = rs.b();
    smtos_assert(hasClients == (clients_ != nullptr));
    if (clients_)
        clients_->load(rs);

    if (numCores() > 1) {
        for (auto &rq : runqsN_) {
            rq.clear();
            for (std::uint64_t n = rs.u64(); n > 0; --n)
                rq.push_back(byPid(rs.i32()));
        }
        for (auto &pq : protoQsN_) {
            pq.clear();
            for (std::uint64_t n = rs.u64(); n > 0; --n)
                pq.push_back(pktIn(rs));
        }
        for (auto &up : procs_)
            up->homeCore = rs.i32();
        auto lockIn = [&rs](KLock &l) {
            l.freeAt = rs.u64();
            l.acquisitions = rs.u64();
            l.contended = rs.u64();
            l.spinCycles = rs.u64();
            l.holdCycles = rs.u64();
        };
        lockIn(connLock_);
        lockIn(mbufLock_);
        for (KLock &l : schedLocks_)
            lockIn(l);
        for (std::uint64_t &v : lockSpinByCore_)
            v = rs.u64();
        steals_ = rs.u64();
        shootdownIpis_ = rs.u64();
        shootdownsDelivered_ = rs.u64();
        pendingShootdowns_ = rs.u64();
        lastHookCycle_ = rs.u64();
    }
}

// Overload state rides only the optional trailing OVLD section, so
// the KERN bytes above — the default-run bit-identity contract —
// never change. The caller re-applies the section's OpenLoopParams/
// AdmitParams via setOpenLoop/setAdmission before loadOverload; the
// RX unit map is not serialized because setAdmission reconstructs it
// from the already-restored connections and protocol queue.
void
Kernel::saveOverload(Snapshotter &sp) const
{
    sp.u64(admit_ ? admit_->rngRawState() : 0);
    sp.u64(mbufTxCursor_);
    sp.u64(admitDropTail_);
    sp.u64(admitRedDrops_);
    sp.u64(admitShed_);
    sp.u64(mbufExhausted_);
    sp.u64(mbufTxWraps_);
    sp.u64(conns_.size());
    for (const Connection &c : conns_)
        sp.u64(c.acceptedAt);
    sp.b(clients_ != nullptr);
    if (clients_)
        clients_->saveOpenLoop(sp);
}

void
Kernel::loadOverload(Restorer &rs)
{
    const std::uint64_t admitRng = rs.u64();
    if (admit_)
        admit_->setRngRawState(admitRng);
    mbufTxCursor_ = rs.u64();
    admitDropTail_ = rs.u64();
    admitRedDrops_ = rs.u64();
    admitShed_ = rs.u64();
    mbufExhausted_ = rs.u64();
    mbufTxWraps_ = rs.u64();
    smtos_assert(rs.u64() == conns_.size());
    for (Connection &c : conns_)
        c.acceptedAt = rs.u64();
    const bool hasClients = rs.b();
    smtos_assert(hasClients == (clients_ != nullptr));
    if (clients_)
        clients_->loadOpenLoop(rs);
}

} // namespace smtos
