#include "snap/sysstate.h"

#include "sim/system.h"
#include "snap/snapshot.h"

namespace smtos {

SnapImages
collectImages(System &sys)
{
    SnapImages images;
    images.add(&sys.kernelCode().image);
    Kernel &k = sys.kernel();
    for (int pid = 0; pid < k.numProcs(); ++pid) {
        const Process &p = k.proc(pid);
        if (p.cfg.image)
            images.add(p.cfg.image);
    }
    return images;
}

void
saveMachineSections(Snapshotter &sp, System &sys, FaultPlan *plan)
{
    const SnapImages images = collectImages(sys);

    sp.beginSection("PHYS", PhysMem::snapVersion);
    sys.physMem().save(sp);
    sp.endSection();

    sp.beginSection("KERN", Kernel::snapVersion);
    sys.kernel().save(sp, images);
    sp.endSection();

    sp.beginSection("PIPE", Pipeline::snapVersion);
    sys.pipeline().save(sp, images);
    sp.endSection();

    sp.beginSection("HIER", Hierarchy::snapVersion);
    sys.hierarchy().save(sp);
    sp.endSection();

    // CMP cores 1..N-1: one PIPE plus one private-HIER slice per
    // extra core (the shared L2 complex already rode core 0's HIER),
    // then the coherence hub. cores = 1 artifacts end at FLTP with
    // the historical layout, byte for byte.
    for (int c = 1; c < sys.numCores(); ++c) {
        sp.beginSection("PIPE", Pipeline::snapVersion);
        sys.pipeline(c).save(sp, images);
        sp.endSection();

        sp.beginSection("HIER", Hierarchy::snapVersion);
        sys.hierarchy(c).savePrivate(sp);
        sp.endSection();
    }
    if (sys.coherence()) {
        sp.beginSection("COH ", CoherenceHub::snapVersion);
        sys.coherence()->save(sp);
        sp.endSection();
    }

    sp.beginSection("FLTP", FaultPlan::snapVersion);
    sp.b(plan != nullptr);
    if (plan)
        plan->save(sp);
    sp.endSection();
}

void
loadMachineSections(Restorer &rs, System &sys, FaultPlan *plan)
{
    const SnapImages images = collectImages(sys);
    Kernel &k = sys.kernel();

    rs.enterSection("PHYS");
    sys.physMem().load(rs);
    rs.leaveSection();

    rs.enterSection("KERN");
    k.load(rs, images);
    rs.leaveSection();

    rs.enterSection("PIPE");
    sys.pipeline().load(rs, images, [&k](ThreadId tid) {
        return &k.proc(tid).ts;
    });
    rs.leaveSection();

    rs.enterSection("HIER");
    sys.hierarchy().load(rs);
    rs.leaveSection();

    for (int c = 1; c < sys.numCores(); ++c) {
        rs.enterSection("PIPE");
        sys.pipeline(c).load(rs, images, [&k](ThreadId tid) {
            return &k.proc(tid).ts;
        });
        rs.leaveSection();

        rs.enterSection("HIER");
        sys.hierarchy(c).loadPrivate(rs);
        rs.leaveSection();
    }
    if (sys.coherence()) {
        rs.enterSection("COH ");
        sys.coherence()->load(rs);
        rs.leaveSection();
    }

    rs.enterSection("FLTP");
    const bool hadPlan = rs.b();
    smtos_assert(hadPlan == (plan != nullptr));
    if (plan)
        plan->load(rs);
    rs.leaveSection();

    for (int c = 0; c < sys.numCores(); ++c)
        sys.pipeline(c).resyncThreads();
}

} // namespace smtos
