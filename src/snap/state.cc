/**
 * @file
 * save(Snapshotter&)/load(Restorer&) definitions for every small
 * stateful class. Each blob starts with the class's snapVersion tag;
 * containers with nondeterministic iteration order (unordered maps)
 * are serialized sorted by key so identical simulated state always
 * produces identical artifact bytes. Host-side accelerator caches
 * (AddrSpace translation cache, TLB lookup hints) are not serialized:
 * they are validated before use, so restoring them cold is
 * bit-identical to restoring them warm.
 */

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "bp/btb.h"
#include "bp/mcfarling.h"
#include "bp/ras.h"
#include "common/stats.h"
#include "fault/fault.h"
#include "mem/bus.h"
#include "mem/cache.h"
#include "mem/dram.h"
#include "mem/hierarchy.h"
#include "mem/memctrl.h"
#include "mem/missclass.h"
#include "mem/mshr.h"
#include "mem/storebuffer.h"
#include "net/clients.h"
#include "net/network.h"
#include "snap/snapshot.h"
#include "vm/addrspace.h"
#include "vm/physmem.h"
#include "vm/tlb.h"

namespace smtos {

namespace {

/** Write/read a trivially copyable vector as one byte run. */
template <typename T>
void
vecOut(Snapshotter &sp, const std::vector<T> &v)
{
    static_assert(std::is_trivially_copyable_v<T>);
    sp.u64(v.size());
    if (!v.empty())
        sp.bytes(v.data(), v.size() * sizeof(T));
}

template <typename T>
void
vecIn(Restorer &rs, std::vector<T> &v)
{
    static_assert(std::is_trivially_copyable_v<T>);
    v.resize(rs.u64());
    if (!v.empty())
        rs.bytes(v.data(), v.size() * sizeof(T));
}

/** unordered_map<u64-ish, u64-ish> serialized sorted by key. */
template <typename K, typename V>
void
mapOut(Snapshotter &sp, const std::unordered_map<K, V> &m)
{
    std::vector<K> keys;
    keys.reserve(m.size());
    for (const auto &kv : m)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    sp.u64(keys.size());
    for (const K &k : keys) {
        sp.u64(static_cast<std::uint64_t>(k));
        sp.u64(static_cast<std::uint64_t>(m.at(k)));
    }
}

template <typename K, typename V>
void
mapIn(Restorer &rs, std::unordered_map<K, V> &m)
{
    m.clear();
    const std::uint64_t n = rs.u64();
    m.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        const K k = static_cast<K>(rs.u64());
        m.emplace(k, static_cast<V>(rs.u64()));
    }
}

void
statsOut(Snapshotter &sp, const InterferenceStats &s)
{
    // All-u64 aggregate: no padding, safe as one byte run.
    sp.bytes(&s, sizeof s);
}

void
statsIn(Restorer &rs, InterferenceStats &s)
{
    rs.bytes(&s, sizeof s);
}

void
packetOut(Snapshotter &sp, const Packet &p)
{
    sp.i32(p.client);
    sp.i32(p.conn);
    sp.u32(p.bytes);
    sp.b(p.open);
    sp.b(p.fin);
    sp.i32(p.fileId);
    sp.u64(p.mbuf);
    sp.u32(p.reqSeq);
}

Packet
packetIn(Restorer &rs)
{
    Packet p;
    p.client = rs.i32();
    p.conn = rs.i32();
    p.bytes = rs.u32();
    p.open = rs.b();
    p.fin = rs.b();
    p.fileId = rs.i32();
    p.mbuf = rs.u64();
    p.reqSeq = rs.u32();
    return p;
}

std::uint32_t
tag(Restorer &rs, std::uint32_t want)
{
    const std::uint32_t v = rs.u32();
    smtos_assert(v == want);
    return v;
}

} // namespace

// --- common/stats.h ---

void
Sampler::save(Snapshotter &sp) const
{
    sp.u32(snapVersion);
    sp.u64(count_);
    sp.f64(sum_);
    sp.f64(min_);
    sp.f64(max_);
}

void
Sampler::load(Restorer &rs)
{
    tag(rs, snapVersion);
    count_ = rs.u64();
    sum_ = rs.f64();
    min_ = rs.f64();
    max_ = rs.f64();
}

void
Histogram::save(Snapshotter &sp) const
{
    sp.u32(snapVersion);
    sp.i64(lo_);
    sp.i64(hi_);
    vecOut(sp, counts_);
    sp.u64(total_);
    sp.f64(weightedSum_);
}

void
Histogram::load(Restorer &rs)
{
    tag(rs, snapVersion);
    smtos_assert(rs.i64() == lo_);
    smtos_assert(rs.i64() == hi_);
    const std::size_t buckets = counts_.size();
    vecIn(rs, counts_);
    smtos_assert(counts_.size() == buckets);
    total_ = rs.u64();
    weightedSum_ = rs.f64();
}

void
CounterMap::save(Snapshotter &sp) const
{
    sp.u32(snapVersion);
    sp.u64(counts_.size());
    for (const auto &kv : counts_) { // std::map: sorted already
        sp.str(kv.first);
        sp.u64(kv.second);
    }
}

void
CounterMap::load(Restorer &rs)
{
    tag(rs, snapVersion);
    counts_.clear();
    const std::uint64_t n = rs.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        std::string k = rs.str();
        counts_[std::move(k)] = rs.u64();
    }
}

// --- mem/missclass.h ---

void
MissClassifier::save(Snapshotter &sp) const
{
    sp.u32(snapVersion);
    std::vector<Addr> keys;
    keys.reserve(evictors_.size());
    evictors_.forEach(
        [&](Addr k, const Evictor &) { keys.push_back(k); });
    std::sort(keys.begin(), keys.end());
    sp.u64(keys.size());
    for (Addr k : keys) {
        const Evictor &e = *evictors_.find(k);
        sp.u64(k);
        sp.i32(e.thread);
        sp.b(e.kernel);
        sp.b(e.byInvalidation);
    }
}

void
MissClassifier::load(Restorer &rs)
{
    tag(rs, snapVersion);
    evictors_.clear();
    const std::uint64_t n = rs.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        const Addr k = rs.u64();
        Evictor e;
        e.thread = rs.i32();
        e.kernel = rs.b();
        e.byInvalidation = rs.b();
        evictors_.upsert(k) = e;
    }
}

// --- mem/cache.h ---

void
Cache::save(Snapshotter &sp) const
{
    sp.u32(snapVersion);
    sp.u64(lines_.size());
    for (const Line &l : lines_) {
        sp.b(l.valid);
        sp.b(l.dirty);
        sp.u64(l.blockAddr);
        sp.u64(l.lruStamp);
        sp.i32(l.fillerThread);
        sp.b(l.fillerKernel);
        sp.u64(l.touchedMask);
    }
    sp.u64(tick_);
    classifier_.save(sp);
    statsOut(sp, stats_);
}

void
Cache::load(Restorer &rs)
{
    tag(rs, snapVersion);
    smtos_assert(rs.u64() == lines_.size());
    for (Line &l : lines_) {
        l.valid = rs.b();
        l.dirty = rs.b();
        l.blockAddr = rs.u64();
        l.lruStamp = rs.u64();
        l.fillerThread = rs.i32();
        l.fillerKernel = rs.b();
        l.touchedMask = rs.u64();
    }
    rebuildTags();
    tick_ = rs.u64();
    classifier_.load(rs);
    statsIn(rs, stats_);
}

// --- mem/mshr.h ---

void
MshrFile::save(Snapshotter &sp) const
{
    sp.u32(snapVersion);
    sp.u64(entries_.size());
    for (const Entry &e : entries_) {
        sp.b(e.valid);
        sp.u64(e.blockAddr);
        sp.u64(e.readyAt);
    }
    sp.u64(fills_);
    sp.u64(merges_);
    sp.u64(fullStalls_);
    sp.f64(occupancyIntegral_);
}

void
MshrFile::load(Restorer &rs)
{
    tag(rs, snapVersion);
    smtos_assert(rs.u64() == entries_.size());
    for (Entry &e : entries_) {
        e.valid = rs.b();
        e.blockAddr = rs.u64();
        e.readyAt = rs.u64();
    }
    fills_ = rs.u64();
    merges_ = rs.u64();
    fullStalls_ = rs.u64();
    occupancyIntegral_ = rs.f64();
}

// --- mem/storebuffer.h ---

void
StoreBuffer::save(Snapshotter &sp) const
{
    sp.u32(snapVersion);
    vecOut(sp, drains_);
    sp.u64(valid_.size());
    for (std::size_t i = 0; i < valid_.size(); ++i)
        sp.b(valid_[i]);
    sp.u64(stores_);
    sp.u64(fullStalls_);
}

void
StoreBuffer::load(Restorer &rs)
{
    tag(rs, snapVersion);
    const std::size_t slots = drains_.size();
    vecIn(rs, drains_);
    smtos_assert(drains_.size() == slots);
    smtos_assert(rs.u64() == valid_.size());
    for (std::size_t i = 0; i < valid_.size(); ++i)
        valid_[i] = rs.b();
    stores_ = rs.u64();
    fullStalls_ = rs.u64();
}

// --- mem/bus.h ---

void
Bus::save(Snapshotter &sp) const
{
    sp.u32(snapVersion);
    sp.u64(nextFree_);
    sp.u64(transactions_);
    sp.u64(queueingDelay_);
}

void
Bus::load(Restorer &rs)
{
    tag(rs, snapVersion);
    nextFree_ = rs.u64();
    transactions_ = rs.u64();
    queueingDelay_ = rs.u64();
}

// --- mem/dram.h ---

void
Dram::save(Snapshotter &sp) const
{
    sp.u32(snapVersion);
    sp.u64(accesses_);
}

void
Dram::load(Restorer &rs)
{
    tag(rs, snapVersion);
    accesses_ = rs.u64();
}

// --- mem/memctrl.h ---

void
MemCtrl::save(Snapshotter &sp) const
{
    // The flat blob comes first so flat-mode snapshots are
    // byte-identical to the pre-banked format; the banked blob is
    // appended only when the banked model is live.
    flat_.save(sp);
    if (!params_.banked)
        return;
    sp.u32(snapVersion);
    sp.u64(banks_.size());
    for (const Bank &b : banks_) {
        sp.i64(b.openRow);
        sp.u64(b.readyAt);
        sp.u64(b.nextColAt);
    }
    sp.u64(rankWin_.size());
    for (const RankWindow &r : rankWin_) {
        for (Cycle a : r.act)
            sp.u64(a);
        sp.i32(r.pos);
        sp.i32(r.count);
    }
    sp.u64(channels_.size());
    for (const Channel &c : channels_) {
        sp.u64(c.busy.size());
        for (const Interval &iv : c.busy) {
            sp.u64(iv.start);
            sp.u64(iv.end);
        }
        vecOut(sp, c.inflight);
    }
    sp.u64(accesses_);
    sp.u64(rowHits_);
    sp.u64(rowEmpties_);
    sp.u64(rowConflicts_);
    sp.u64(latencyCycles_);
    sp.u64(queueStallCycles_);
    sp.u64(queueFullStalls_);
    sp.u64(queueOccupancy_);
    vecOut(sp, chAccesses_);
    vecOut(sp, chBusyCycles_);
    vecOut(sp, bankRowHits_);
    vecOut(sp, bankRowConflicts_);
}

void
MemCtrl::load(Restorer &rs)
{
    flat_.load(rs);
    if (!params_.banked)
        return;
    tag(rs, snapVersion);
    smtos_assert(rs.u64() == banks_.size());
    for (Bank &b : banks_) {
        b.openRow = rs.i64();
        b.readyAt = rs.u64();
        b.nextColAt = rs.u64();
    }
    smtos_assert(rs.u64() == rankWin_.size());
    for (RankWindow &r : rankWin_) {
        for (Cycle &a : r.act)
            a = rs.u64();
        r.pos = rs.i32();
        r.count = rs.i32();
    }
    smtos_assert(rs.u64() == channels_.size());
    for (Channel &c : channels_) {
        c.busy.clear();
        const std::uint64_t n = rs.u64();
        c.busy.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            Interval iv;
            iv.start = rs.u64();
            iv.end = rs.u64();
            c.busy.push_back(iv);
        }
        vecIn(rs, c.inflight);
    }
    accesses_ = rs.u64();
    rowHits_ = rs.u64();
    rowEmpties_ = rs.u64();
    rowConflicts_ = rs.u64();
    latencyCycles_ = rs.u64();
    queueStallCycles_ = rs.u64();
    queueFullStalls_ = rs.u64();
    queueOccupancy_ = rs.u64();
    vecIn(rs, chAccesses_);
    vecIn(rs, chBusyCycles_);
    vecIn(rs, bankRowHits_);
    vecIn(rs, bankRowConflicts_);
    smtos_assert(chAccesses_.size() == channels_.size());
    smtos_assert(bankRowHits_.size() == banks_.size());
}

// --- mem/hierarchy.h ---

void
Hierarchy::save(Snapshotter &sp) const
{
    sp.u32(snapVersion);
    l1i_.save(sp);
    l1d_.save(sp);
    l2_.save(sp);
    l1Mshr_.save(sp);
    l2Mshr_.save(sp);
    storeBuffer_.save(sp);
    l1l2Bus_.save(sp);
    memBus_.save(sp);
    memctrl_.save(sp);
    sp.f64(imissIntegral_);
    sp.f64(dmissIntegral_);
    sp.f64(l2missIntegral_);
}

void
Hierarchy::load(Restorer &rs)
{
    tag(rs, snapVersion);
    l1i_.load(rs);
    l1d_.load(rs);
    l2_.load(rs);
    l1Mshr_.load(rs);
    l2Mshr_.load(rs);
    storeBuffer_.load(rs);
    l1l2Bus_.load(rs);
    memBus_.load(rs);
    memctrl_.load(rs);
    imissIntegral_ = rs.f64();
    dmissIntegral_ = rs.f64();
    l2missIntegral_ = rs.f64();
}

void
Hierarchy::savePrivate(Snapshotter &sp) const
{
    sp.u32(snapVersion);
    l1i_.save(sp);
    l1d_.save(sp);
    l1Mshr_.save(sp);
    storeBuffer_.save(sp);
    sp.f64(imissIntegral_);
    sp.f64(dmissIntegral_);
}

void
Hierarchy::loadPrivate(Restorer &rs)
{
    tag(rs, snapVersion);
    l1i_.load(rs);
    l1d_.load(rs);
    l1Mshr_.load(rs);
    storeBuffer_.load(rs);
    imissIntegral_ = rs.f64();
    dmissIntegral_ = rs.f64();
}

// --- vm/physmem.h ---

void
PhysMem::save(Snapshotter &sp) const
{
    sp.u32(snapVersion);
    sp.u64(totalFrames_);
    sp.u64(firstAlloc_);
    sp.u64(bump_);
    vecOut(sp, freeList_);
    sp.u64(allocated_);
}

void
PhysMem::load(Restorer &rs)
{
    tag(rs, snapVersion);
    smtos_assert(rs.u64() == totalFrames_);
    smtos_assert(rs.u64() == firstAlloc_);
    bump_ = rs.u64();
    vecIn(rs, freeList_);
    allocated_ = rs.u64();
}

// --- vm/addrspace.h ---

void
AddrSpace::save(Snapshotter &sp) const
{
    sp.u32(snapVersion);
    sp.i32(asn_);
    mapOut(sp, pages_);
    mapOut(sp, ptPages_);
}

void
AddrSpace::load(Restorer &rs)
{
    tag(rs, snapVersion);
    asn_ = rs.i32();
    mapIn(rs, pages_);
    mapIn(rs, ptPages_);
    // The host translation caches were warmed against the pre-restore
    // maps; restart them cold (they are validated, so cold vs. warm is
    // bit-identical for simulation results).
    for (auto &w : pageCache_)
        w.vpn = invalidVpn;
    for (auto &w : ptCache_)
        w.vpn = invalidVpn;
}

// --- vm/tlb.h ---

void
Tlb::save(Snapshotter &sp) const
{
    sp.u32(snapVersion);
    sp.u64(entries_.size());
    for (const Entry &e : entries_) {
        sp.b(e.valid);
        sp.b(e.global);
        sp.i32(e.asn);
        sp.u64(e.vpn);
        sp.u64(e.frame);
        sp.i32(e.filler);
        sp.b(e.fillerKernel);
        sp.u64(e.touchedMask);
    }
    sp.i32(replacePtr_);
    classifier_.save(sp);
    statsOut(sp, stats_);
}

void
Tlb::load(Restorer &rs)
{
    tag(rs, snapVersion);
    smtos_assert(rs.u64() == entries_.size());
    for (Entry &e : entries_) {
        e.valid = rs.b();
        e.global = rs.b();
        e.asn = rs.i32();
        e.vpn = rs.u64();
        e.frame = rs.u64();
        e.filler = rs.i32();
        e.fillerKernel = rs.b();
        e.touchedMask = rs.u64();
    }
    replacePtr_ = rs.i32();
    classifier_.load(rs);
    statsIn(rs, stats_);
    rebuildTags();
    // Lookup hints are validated accelerators; restart them cold.
    std::fill(hint_.begin(), hint_.end(), 0u);
}

// --- bp/mcfarling.h ---

void
McFarling::save(Snapshotter &sp) const
{
    sp.u32(snapVersion);
    vecOut(sp, localHist_);
    vecOut(sp, localPred_);
    vecOut(sp, global_);
    vecOut(sp, chooser_);
    sp.u64(ghr_);
    sp.u64(localPicks_);
    sp.u64(globalPicks_);
}

void
McFarling::load(Restorer &rs)
{
    tag(rs, snapVersion);
    const std::size_t lh = localHist_.size(), lp = localPred_.size();
    const std::size_t g = global_.size(), ch = chooser_.size();
    vecIn(rs, localHist_);
    vecIn(rs, localPred_);
    vecIn(rs, global_);
    vecIn(rs, chooser_);
    smtos_assert(localHist_.size() == lh && localPred_.size() == lp);
    smtos_assert(global_.size() == g && chooser_.size() == ch);
    ghr_ = rs.u64();
    localPicks_ = rs.u64();
    globalPicks_ = rs.u64();
}

// --- bp/btb.h ---

void
Btb::save(Snapshotter &sp) const
{
    sp.u32(snapVersion);
    sp.u64(entries_.size());
    for (const Entry &e : entries_) {
        sp.b(e.valid);
        sp.u64(e.pc);
        sp.u64(e.target);
        sp.u64(e.lruStamp);
    }
    sp.u64(tick_);
    classifier_.save(sp);
    statsOut(sp, stats_);
    sp.u64(wrongTarget_);
}

void
Btb::load(Restorer &rs)
{
    tag(rs, snapVersion);
    smtos_assert(rs.u64() == entries_.size());
    for (Entry &e : entries_) {
        e.valid = rs.b();
        e.pc = rs.u64();
        e.target = rs.u64();
        e.lruStamp = rs.u64();
    }
    tick_ = rs.u64();
    classifier_.load(rs);
    statsIn(rs, stats_);
    wrongTarget_ = rs.u64();
}

// --- bp/ras.h ---

void
Ras::save(Snapshotter &sp) const
{
    sp.u32(snapVersion);
    vecOut(sp, stack_);
    sp.i32(sp_);
}

void
Ras::load(Restorer &rs)
{
    tag(rs, snapVersion);
    const std::size_t depth = stack_.size();
    vecIn(rs, stack_);
    smtos_assert(stack_.size() == depth);
    sp_ = rs.i32();
}

// --- net/network.h ---

void
Network::save(Snapshotter &sp) const
{
    sp.u32(snapVersion);
    auto dequeOut = [&sp](const std::deque<Packet> &q) {
        sp.u64(q.size());
        for (const Packet &p : q)
            packetOut(sp, p);
    };
    dequeOut(toServer_);
    dequeOut(toClient_);
    sp.u64(delayed_.size());
    for (const Delayed &d : delayed_) {
        sp.u64(d.at);
        sp.b(d.toServer);
        packetOut(sp, d.pkt);
    }
    sp.u64(now_);
    sp.u64(reqPackets_);
    sp.u64(respPackets_);
    sp.u64(reqBytes_);
    sp.u64(respBytes_);
}

void
Network::load(Restorer &rs)
{
    tag(rs, snapVersion);
    auto dequeIn = [&rs](std::deque<Packet> &q) {
        q.clear();
        const std::uint64_t n = rs.u64();
        for (std::uint64_t i = 0; i < n; ++i)
            q.push_back(packetIn(rs));
    };
    dequeIn(toServer_);
    dequeIn(toClient_);
    delayed_.clear();
    const std::uint64_t n = rs.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        Delayed d;
        d.at = rs.u64();
        d.toServer = rs.b();
        d.pkt = packetIn(rs);
        delayed_.push_back(d);
    }
    now_ = rs.u64();
    reqPackets_ = rs.u64();
    respPackets_ = rs.u64();
    reqBytes_ = rs.u64();
    respBytes_ = rs.u64();
}

// --- net/clients.h ---

void
ClientPopulation::save(Snapshotter &sp) const
{
    sp.u32(snapVersion);
    sp.u64(rng_.rawState());
    sp.u64(clients_.size());
    for (const Client &c : clients_) {
        sp.u8(static_cast<std::uint8_t>(c.state));
        sp.u64(c.nextRequestAt);
        sp.u64(c.respRemaining);
        packetOut(sp, c.lastRequest);
        sp.u64(c.issuedAt);
        sp.u64(c.timeoutAt);
        sp.i32(c.retries);
        sp.u32(c.reqSeq);
    }
    sp.b(recovery_);
    sp.u64(requestsIssued_);
    sp.u64(responses_);
    sp.u64(retransmits_);
    sp.u64(aborts_);
    sp.u64(retried_);
    latency_.save(sp);
    retriedLatency_.save(sp);
}

void
ClientPopulation::load(Restorer &rs)
{
    tag(rs, snapVersion);
    rng_.setRawState(rs.u64());
    smtos_assert(rs.u64() == clients_.size());
    for (Client &c : clients_) {
        c.state = static_cast<Client::State>(rs.u8());
        c.nextRequestAt = rs.u64();
        c.respRemaining = rs.u64();
        c.lastRequest = packetIn(rs);
        c.issuedAt = rs.u64();
        c.timeoutAt = rs.u64();
        c.retries = rs.i32();
        c.reqSeq = rs.u32();
    }
    recovery_ = rs.b();
    requestsIssued_ = rs.u64();
    responses_ = rs.u64();
    retransmits_ = rs.u64();
    aborts_ = rs.u64();
    retried_ = rs.u64();
    latency_.load(rs);
    retriedLatency_.load(rs);
}

// Open-loop generator state: serialized only into the optional OVLD
// snapshot section, so save()'s bytes above — the closed-loop
// bit-identity contract — never change.
void
ClientPopulation::saveOpenLoop(Snapshotter &sp) const
{
    sp.b(arrivalInit_);
    sp.u64(nextArrivalAt_);
    sp.u64(rampStartAt_);
    sp.i32(nextPort_);
    sp.u64(arrivalRng_.rawState());
    sp.u64(arrivals_);
    sp.u64(arrivalOverflows_);
    sp.u64(slowCompletions_);
    sp.u64(clients_.size());
    for (const Client &c : clients_) {
        sp.b(c.slow);
        sp.u64(c.drainDoneAt);
    }
}

void
ClientPopulation::loadOpenLoop(Restorer &rs)
{
    arrivalInit_ = rs.b();
    nextArrivalAt_ = rs.u64();
    rampStartAt_ = rs.u64();
    nextPort_ = rs.i32();
    arrivalRng_.setRawState(rs.u64());
    arrivals_ = rs.u64();
    arrivalOverflows_ = rs.u64();
    slowCompletions_ = rs.u64();
    smtos_assert(rs.u64() == clients_.size());
    for (Client &c : clients_) {
        c.slow = rs.b();
        c.drainDoneAt = rs.u64();
    }
}

// --- fault/fault.h ---

void
FaultPlan::save(Snapshotter &sp) const
{
    sp.u32(snapVersion);
    sp.u64(rngLink_.rawState());
    sp.u64(rngMce_.rawState());
    sp.u64(nextMceAt_);
    sp.u64(log_.size());
    for (const FaultEvent &e : log_) {
        sp.u64(e.cycle);
        sp.u8(static_cast<std::uint8_t>(e.kind));
        sp.u64(e.a);
        sp.u64(e.b);
    }
    sp.u64(logOverflow_);
    // FaultCounters: all-u64 aggregate, no padding.
    sp.bytes(&c_, sizeof c_);
}

void
FaultPlan::load(Restorer &rs)
{
    tag(rs, snapVersion);
    rngLink_.setRawState(rs.u64());
    rngMce_.setRawState(rs.u64());
    nextMceAt_ = rs.u64();
    log_.clear();
    const std::uint64_t n = rs.u64();
    log_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        FaultEvent e;
        e.cycle = rs.u64();
        e.kind = static_cast<FaultKind>(rs.u8());
        e.a = rs.u64();
        e.b = rs.u64();
        log_.push_back(e);
    }
    logOverflow_ = rs.u64();
    rs.bytes(&c_, sizeof c_);
}

} // namespace smtos
