/**
 * @file
 * Pipeline snapshot/restore: the instruction windows (with live
 * in-flight uops), per-context front-end and squash state, rename
 * maps, RAS, shared predictor/BTB/TLBs, and the aggregate statistics.
 *
 * Restore contract: the pipeline was freshly constructed with the
 * identical CoreParams (the artifact's config section drives the
 * rebuild), threads exist again at the same ids, and not a single
 * cycle has run. load() then overwrites every mutable field.
 * `const Instr *` round-trips as (image id, flat index) through the
 * deterministic SnapImages registry; thread bindings round-trip by
 * thread id.
 */

#include <cstring>

#include "core/pipeline.h"
#include "isa/program.h"
#include "snap/snapshot.h"

namespace smtos {

namespace {

void
instrOut(Snapshotter &sp, const SnapImages &images, const Instr *in)
{
    if (!in) {
        sp.i32(-1);
        sp.u32(0);
        return;
    }
    for (int id = 0; id < images.count(); ++id) {
        const std::int64_t flat = images.byId(id)->indexOf(in);
        if (flat >= 0) {
            sp.i32(id);
            sp.u32(static_cast<std::uint32_t>(flat));
            return;
        }
    }
    smtos_panic("snapshot: Instr pointer not in any registered image");
}

const Instr *
instrIn(Restorer &rs, const SnapImages &images)
{
    const std::int32_t id = rs.i32();
    const std::uint32_t flat = rs.u32();
    if (id < 0)
        return nullptr;
    return images.byId(id)->instrPtr(flat);
}

void
uopOut(Snapshotter &sp, const SnapImages &images, const Uop &u)
{
    instrOut(sp, images, u.instr);
    sp.u64(u.pc);
    sp.u64(u.vaddr);
    sp.u64(u.paddr);
    sp.u8(static_cast<std::uint8_t>(u.mode));
    sp.i32(u.tag);
    sp.i32(u.thread);
    sp.u64(u.seq);
    sp.u8(static_cast<std::uint8_t>(u.stage));
    sp.b(u.wrongPath);
    sp.b(u.serializing);
    sp.b(u.mispredicted);
    sp.b(u.redirectOnly);
    sp.b(u.hasCheckpoint);
    sp.b(u.isCondBranch);
    sp.b(u.predTaken);
    sp.b(u.actualTaken);
    sp.b(u.trapDtlb);
    sp.u8(u.destType);
    sp.u64(u.eligibleAt);
    sp.u64(u.doneAt);
    sp.u64(u.drainAt);
    sp.u64(u.depA);
    sp.u64(u.depB);
    sp.u64(u.depAPos);
    sp.u64(u.depBPos);
    sp.bytes(&u.cp, sizeof u.cp); // Cursor: trivially copyable
    sp.i32(u.rasCp.sp);
    sp.u64(u.rasCp.top);
    sp.u64(u.ghrCp);
}

void
uopIn(Restorer &rs, const SnapImages &images, Uop &u)
{
    u.instr = instrIn(rs, images);
    u.pc = rs.u64();
    u.vaddr = rs.u64();
    u.paddr = rs.u64();
    u.mode = static_cast<Mode>(rs.u8());
    u.tag = static_cast<std::int16_t>(rs.i32());
    u.thread = rs.i32();
    u.seq = rs.u64();
    u.stage = static_cast<Uop::Stage>(rs.u8());
    u.wrongPath = rs.b();
    u.serializing = rs.b();
    u.mispredicted = rs.b();
    u.redirectOnly = rs.b();
    u.hasCheckpoint = rs.b();
    u.isCondBranch = rs.b();
    u.predTaken = rs.b();
    u.actualTaken = rs.b();
    u.trapDtlb = rs.b();
    u.destType = rs.u8();
    u.eligibleAt = rs.u64();
    u.doneAt = rs.u64();
    u.drainAt = rs.u64();
    u.depA = rs.u64();
    u.depB = rs.u64();
    u.depAPos = rs.u64();
    u.depBPos = rs.u64();
    rs.bytes(&u.cp, sizeof u.cp);
    u.rasCp.sp = rs.i32();
    u.rasCp.top = rs.u64();
    u.ghrCp = rs.u64();
}

void
coreStatsOut(Snapshotter &sp, const CoreStats &s)
{
    sp.u64(s.cycles);
    sp.u64(s.fetched);
    sp.u64(s.fetchedWrongPath);
    sp.u64(s.squashed);
    sp.u64(s.issued);
    sp.bytes(s.retired, sizeof s.retired);
    sp.bytes(s.retiredByTag, sizeof s.retiredByTag);
    sp.bytes(s.mix, sizeof s.mix);
    sp.bytes(s.physMem, sizeof s.physMem);
    sp.bytes(s.condRetired, sizeof s.condRetired);
    sp.bytes(s.condTaken, sizeof s.condTaken);
    sp.bytes(s.condMispred, sizeof s.condMispred);
    sp.bytes(s.targetMispred, sizeof s.targetMispred);
    sp.u64(s.zeroFetchCycles);
    sp.u64(s.zeroIssueCycles);
    sp.u64(s.maxIssueCycles);
    s.fetchableContexts.save(sp);
    s.kernelEntries.save(sp);
}

void
coreStatsIn(Restorer &rs, CoreStats &s)
{
    s.cycles = rs.u64();
    s.fetched = rs.u64();
    s.fetchedWrongPath = rs.u64();
    s.squashed = rs.u64();
    s.issued = rs.u64();
    rs.bytes(s.retired, sizeof s.retired);
    rs.bytes(s.retiredByTag, sizeof s.retiredByTag);
    rs.bytes(s.mix, sizeof s.mix);
    rs.bytes(s.physMem, sizeof s.physMem);
    rs.bytes(s.condRetired, sizeof s.condRetired);
    rs.bytes(s.condTaken, sizeof s.condTaken);
    rs.bytes(s.condMispred, sizeof s.condMispred);
    rs.bytes(s.targetMispred, sizeof s.targetMispred);
    s.zeroFetchCycles = rs.u64();
    s.zeroIssueCycles = rs.u64();
    s.maxIssueCycles = rs.u64();
    s.fetchableContexts.load(rs);
    s.kernelEntries.load(rs);
}

} // namespace

void
Pipeline::save(Snapshotter &sp, const SnapImages &images) const
{
    sp.u32(snapVersion);
    sp.u64(now_);
    sp.u64(*seqPtr_);
    sp.i32(intRegsUsed_);
    sp.i32(fpRegsUsed_);
    sp.i32(unissuedInt_);
    sp.i32(unissuedFp_);
    sp.u64(ffCycles_);
    sp.u8(static_cast<std::uint8_t>(fetchStop_));

    sp.i32(static_cast<std::int32_t>(ctxs_.size()));
    for (std::size_t i = 0; i < ctxs_.size(); ++i) {
        const Context &c = ctxs_[i];
        sp.i32(c.thread ? c.thread->id : invalidThread);
        c.ras.save(sp);
        sp.u64(c.fetchResumeAt);
        sp.u8(static_cast<std::uint8_t>(c.stallReason));
        sp.b(c.interruptPending);
        sp.u16(c.interruptVector);
        sp.i32(c.inflight);
        sp.i32(c.unissued);
        sp.u64(c.lastFetchLine);

        const FixedRing<Uop> &q = q_[i];
        sp.u64(q.headPos());
        sp.u64(q.tailPos());
        for (std::uint64_t p = q.headPos(); p < q.tailPos(); ++p)
            uopOut(sp, images, q.atPos(p));

        sp.u64(waitBranch_[i]);
        sp.bytes(writerSeq_[i].data(),
                 writerSeq_[i].size() * sizeof(std::uint64_t));
        sp.bytes(writerPos_[i].data(),
                 writerPos_[i].size() * sizeof(std::uint64_t));
    }

    mcf_.save(sp);
    btb_.save(sp);
    itlb_.save(sp);
    dtlb_.save(sp);
    coreStatsOut(sp, stats_);
}

void
Pipeline::load(Restorer &rs, const SnapImages &images,
               const std::function<ThreadState *(ThreadId)> &threadById)
{
    smtos_assert(rs.u32() == snapVersion);
    now_ = rs.u64();
    *seqPtr_ = rs.u64();
    intRegsUsed_ = rs.i32();
    fpRegsUsed_ = rs.i32();
    unissuedInt_ = rs.i32();
    unissuedFp_ = rs.i32();
    ffCycles_ = rs.u64();
    fetchStop_ = static_cast<FetchStop>(rs.u8());

    smtos_assert(rs.i32() ==
                 static_cast<std::int32_t>(ctxs_.size()));
    for (std::size_t i = 0; i < ctxs_.size(); ++i) {
        Context &c = ctxs_[i];
        const ThreadId tid = rs.i32();
        // Direct rebind: bindThread() would zero the rename maps and
        // emit an observer sync; both are overwritten/re-emitted by
        // the restore flow (resyncThreads()).
        c.thread = tid == invalidThread ? nullptr : threadById(tid);
        c.ras.load(rs);
        c.fetchResumeAt = rs.u64();
        c.stallReason = static_cast<FetchStall>(rs.u8());
        c.interruptPending = rs.b();
        c.interruptVector = rs.u16();
        c.inflight = rs.i32();
        c.unissued = rs.i32();
        c.lastFetchLine = rs.u64();

        FixedRing<Uop> &q = q_[i];
        const std::uint64_t head = rs.u64();
        const std::uint64_t tail = rs.u64();
        q.restoreSpan(head, tail);
        for (std::uint64_t p = head; p < tail; ++p)
            uopIn(rs, images, q.atPos(p));

        waitBranch_[i] = rs.u64();
        rs.bytes(writerSeq_[i].data(),
                 writerSeq_[i].size() * sizeof(std::uint64_t));
        rs.bytes(writerPos_[i].data(),
                 writerPos_[i].size() * sizeof(std::uint64_t));
    }

    mcf_.load(rs);
    btb_.load(rs);
    itlb_.load(rs);
    dtlb_.load(rs);
    coreStatsIn(rs, stats_);
}

void
Pipeline::resyncThreads()
{
    if (!obs_)
        return;
    // firstSeq 0, not nextSeq_: the restored archRegs are the
    // committed state, and restored in-flight uops (all with
    // seq < nextSeq_) retire sequentially on top of it.
    for (const Context &c : ctxs_)
        if (c.thread)
            obs_->onThreadStateSync(*c.thread, 0);
}

} // namespace smtos
