#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "common/logging.h"

namespace smtos {

void
TextTable::header(std::vector<std::string> cols)
{
    smtos_assert(!cols.empty());
    header_ = std::move(cols);
}

void
TextTable::row(std::vector<std::string> cells)
{
    smtos_assert(cells.size() == header_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
TextTable::num(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
TextTable::percent(double v, int decimals)
{
    return num(v, decimals) + "%";
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<size_t> width(header_.size(), 0);
    for (size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &r : rows_)
        for (size_t c = 0; c < r.size(); ++c)
            width[c] = std::max(width[c], r[c].size());

    size_t total = 1;
    for (size_t w : width)
        total += w + 3;

    os << "\n== " << title_ << " ==\n";
    auto rule = [&] { os << std::string(total, '-') << "\n"; };
    auto emit = [&](const std::vector<std::string> &cells) {
        os << "|";
        for (size_t c = 0; c < cells.size(); ++c) {
            os << " " << cells[c]
               << std::string(width[c] - cells[c].size(), ' ') << " |";
        }
        os << "\n";
    };

    rule();
    emit(header_);
    rule();
    for (const auto &r : rows_)
        emit(r);
    rule();
}

void
TextTable::print() const
{
    print(std::cout);
}

} // namespace smtos
