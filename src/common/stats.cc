#include "common/stats.h"

#include <algorithm>

namespace smtos {

Histogram::Histogram(std::int64_t lo, std::int64_t hi, int buckets)
    : lo_(lo), hi_(hi)
{
    smtos_assert(hi > lo);
    smtos_assert(buckets > 0);
    counts_.assign(static_cast<size_t>(buckets), 0);
}

void
Histogram::sample(std::int64_t v, std::uint64_t weight)
{
    const std::int64_t span = hi_ - lo_;
    std::int64_t idx = (v - lo_) * numBuckets() / span;
    idx = std::clamp<std::int64_t>(idx, 0, numBuckets() - 1);
    counts_[static_cast<size_t>(idx)] += weight;
    total_ += weight;
    weightedSum_ += static_cast<double>(v) * static_cast<double>(weight);
}

std::int64_t
Histogram::bucketLo(int i) const
{
    const std::int64_t span = hi_ - lo_;
    return lo_ + span * i / numBuckets();
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
    weightedSum_ = 0.0;
}

std::uint64_t
CounterMap::get(const std::string &name) const
{
    auto it = counts_.find(name);
    return it == counts_.end() ? 0 : it->second;
}

std::uint64_t
CounterMap::total() const
{
    std::uint64_t t = 0;
    for (const auto &kv : counts_)
        t += kv.second;
    return t;
}

} // namespace smtos
