#include "common/stats.h"

#include <algorithm>

namespace smtos {

Histogram::Histogram(std::int64_t lo, std::int64_t hi, int buckets)
    : lo_(lo), hi_(hi)
{
    smtos_assert(hi > lo);
    smtos_assert(buckets > 0);
    counts_.assign(static_cast<size_t>(buckets), 0);
}

void
Histogram::sample(std::int64_t v, std::uint64_t weight)
{
    const std::int64_t span = hi_ - lo_;
    std::int64_t idx = (v - lo_) * numBuckets() / span;
    idx = std::clamp<std::int64_t>(idx, 0, numBuckets() - 1);
    counts_[static_cast<size_t>(idx)] += weight;
    total_ += weight;
    weightedSum_ += static_cast<double>(v) * static_cast<double>(weight);
}

std::int64_t
Histogram::bucketLo(int i) const
{
    const std::int64_t span = hi_ - lo_;
    return lo_ + span * i / numBuckets();
}

std::int64_t
Histogram::bucketHi(int i) const
{
    const std::int64_t span = hi_ - lo_;
    return lo_ + span * (i + 1) / numBuckets();
}

double
Histogram::quantile(double q) const
{
    if (total_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the q-quantile sample, 1-based: ceil(q * total),
    // at least 1 so q=0 lands on the first sample.
    const double exact = q * static_cast<double>(total_);
    std::uint64_t rank =
        static_cast<std::uint64_t>(exact) +
        (exact > static_cast<double>(
                     static_cast<std::uint64_t>(exact)) ? 1 : 0);
    if (rank == 0)
        rank = 1;
    std::uint64_t cum = 0;
    for (int i = 0; i < numBuckets(); ++i) {
        const std::uint64_t n = counts_[static_cast<size_t>(i)];
        if (cum + n < rank) {
            cum += n;
            continue;
        }
        // Interpolate the rank's position inside bucket i. Terminal
        // buckets hold clamped samples, so the reported value never
        // leaves [lo, hi] even if the raw samples did.
        const double within =
            (static_cast<double>(rank - cum) - 0.5) /
            static_cast<double>(n);
        const double lo = static_cast<double>(bucketLo(i));
        const double hi = static_cast<double>(bucketHi(i));
        return lo + within * (hi - lo);
    }
    return static_cast<double>(hi_);
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
    weightedSum_ = 0.0;
}

std::uint64_t
CounterMap::get(const std::string &name) const
{
    auto it = counts_.find(name);
    return it == counts_.end() ? 0 : it->second;
}

std::uint64_t
CounterMap::total() const
{
    std::uint64_t t = 0;
    for (const auto &kv : counts_)
        t += kv.second;
    return t;
}

} // namespace smtos
