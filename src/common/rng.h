/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic decision in the simulator draws from an explicitly
 * seeded Rng so simulations are exactly repeatable, mirroring the
 * paper's lock-step/deterministic simulation methodology.
 */

#ifndef SMTOS_COMMON_RNG_H
#define SMTOS_COMMON_RNG_H

#include <cstdint>

namespace smtos {

/**
 * xorshift64* generator: tiny state, fast, and good enough for workload
 * synthesis. Copyable so speculative execution cursors can checkpoint
 * and restore their stochastic state.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed ? seed : 0x9e3779b97f4a7c15ull)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Mask when bound is a power of two — identical result to the
        // modulo (x % 2^k == x & (2^k - 1)), without the hardware
        // divide. Most draws on the per-instruction path use
        // power-of-two bounds (branch chance scale, region windows).
        if ((bound & (bound - 1)) == 0)
            return next() & (bound - 1);
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw. */
    bool chance(double p) { return uniform() < p; }

    /** Raw state accessor for checkpointing/tests. */
    std::uint64_t rawState() const { return state; }

    /** Restore a previously captured raw state (snapshot restore). */
    void
    setRawState(std::uint64_t s)
    {
        state = s ? s : 0x9e3779b97f4a7c15ull;
    }

  private:
    std::uint64_t state;
};

/**
 * Stateless 64-bit mix hash, used where a value must be pseudo-random
 * but a pure function of its inputs (e.g. wrong-path address streams).
 */
inline std::uint64_t
mixHash(std::uint64_t a, std::uint64_t b = 0x9e3779b97f4a7c15ull)
{
    std::uint64_t x = a + 0x9e3779b97f4a7c15ull + (b << 6) + (b >> 2);
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

} // namespace smtos

#endif // SMTOS_COMMON_RNG_H
