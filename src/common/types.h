/**
 * @file
 * Fundamental types shared by every smtos module.
 */

#ifndef SMTOS_COMMON_TYPES_H
#define SMTOS_COMMON_TYPES_H

#include <cstdint>
#include <string>

namespace smtos {

/** Virtual or physical byte address. */
using Addr = std::uint64_t;

/** Simulated cycle count. */
using Cycle = std::uint64_t;

/** Simulated instruction count. */
using InstCount = std::uint64_t;

/** Hardware context (SMT thread slot) identifier. */
using CtxId = int;

/** Software thread (process or kernel thread) identifier. */
using ThreadId = int;

/** Address space number, as tagged into TLB entries (Alpha ASN). */
using Asn = int;

/** Sentinel for "no hardware context". */
constexpr CtxId invalidCtx = -1;

/** Sentinel for "no software thread". */
constexpr ThreadId invalidThread = -1;

/**
 * Execution privilege mode of an instruction or a cycle.
 *
 * The paper accounts cycles and references to user code, kernel code and
 * PAL code separately; Idle covers cycles where a context runs the idle
 * thread.
 */
enum class Mode : std::uint8_t { User = 0, Kernel = 1, Pal = 2, Idle = 3 };

/** Number of distinct Mode values. */
constexpr int numModes = 4;

/**
 * Execution fidelity of the core model (DESIGN.md §15).
 *
 * Detailed is the cycle-accurate SMT pipeline. Functional executes the
 * same architectural semantics with *warming only*: caches, TLBs and
 * branch-predictor state are updated but no pipeline timing is
 * modelled, trading cycle accuracy for simulation rate. Fidelity is
 * switchable at any cycle boundary; the retired-instruction stream
 * stays RefCore-checkable in both modes.
 */
enum class Fidelity : std::uint8_t { Detailed = 0, Functional = 1 };

/** Human-readable fidelity name. */
inline const char *
fidelityName(Fidelity f)
{
    return f == Fidelity::Functional ? "functional" : "detailed";
}

/** True for any privileged mode (kernel or PAL). */
inline bool
isPrivileged(Mode m)
{
    return m == Mode::Kernel || m == Mode::Pal;
}

/** Human-readable mode name. */
inline const char *
modeName(Mode m)
{
    switch (m) {
      case Mode::User: return "user";
      case Mode::Kernel: return "kernel";
      case Mode::Pal: return "pal";
      case Mode::Idle: return "idle";
    }
    return "?";
}

/** Page size used throughout the virtual memory system. */
constexpr Addr pageBytes = 4096;

/** log2(pageBytes). */
constexpr int pageShift = 12;

/** Extract the virtual/physical page number of an address. */
inline Addr
pageOf(Addr a)
{
    return a >> pageShift;
}

/** Byte offset of an address within its page. */
inline Addr
pageOffset(Addr a)
{
    return a & (pageBytes - 1);
}

} // namespace smtos

#endif // SMTOS_COMMON_TYPES_H
