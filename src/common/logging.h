/**
 * @file
 * Error and status reporting, following the gem5 logging idiom:
 * panic() for simulator bugs, fatal() for user/configuration errors,
 * warn()/inform() for advisory messages.
 */

#ifndef SMTOS_COMMON_LOGGING_H
#define SMTOS_COMMON_LOGGING_H

#include <cstdio>
#include <cstdlib>
#include <string>

namespace smtos {

/** Formats a printf-style message into a std::string. */
std::string logFormat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace smtos

/**
 * Report an internal simulator bug and abort. Use for conditions that
 * should never happen regardless of user input.
 */
#define smtos_panic(...) \
    ::smtos::panicImpl(__FILE__, __LINE__, ::smtos::logFormat(__VA_ARGS__))

/**
 * Report an unrecoverable user/configuration error and exit(1).
 */
#define smtos_fatal(...) \
    ::smtos::fatalImpl(__FILE__, __LINE__, ::smtos::logFormat(__VA_ARGS__))

/** Advisory message about questionable but survivable conditions. */
#define smtos_warn(...) \
    ::smtos::warnImpl(::smtos::logFormat(__VA_ARGS__))

/** Neutral status message. */
#define smtos_inform(...) \
    ::smtos::informImpl(::smtos::logFormat(__VA_ARGS__))

/** Cheap always-on invariant check that panics with location info. */
#define smtos_assert(cond, ...)                                           \
    do {                                                                  \
        if (!(cond))                                                      \
            smtos_panic("assertion failed: %s", #cond);                   \
    } while (0)

#endif // SMTOS_COMMON_LOGGING_H
