/**
 * @file
 * Error and status reporting, following the gem5 logging idiom:
 * panic() for simulator bugs, fatal() for user/configuration errors,
 * warn()/inform() for advisory messages.
 */

#ifndef SMTOS_COMMON_LOGGING_H
#define SMTOS_COMMON_LOGGING_H

#include <cstdio>
#include <cstdlib>
#include <string>

namespace smtos {

/** Formats a printf-style message into a std::string. */
std::string logFormat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/**
 * Hook invoked (once, reentry-guarded) with the failure message just
 * before panic aborts, so a crash-diagnostics bundle can be written.
 * The hook must not assume it can prevent the abort.
 */
using CrashHook = void (*)(const char *reason);
void setCrashHook(CrashHook hook);

[[noreturn]] void checkFailImpl(const char *file, int line,
                                const char *cond);

} // namespace smtos

/**
 * Report an internal simulator bug and abort. Use for conditions that
 * should never happen regardless of user input.
 */
#define smtos_panic(...) \
    ::smtos::panicImpl(__FILE__, __LINE__, ::smtos::logFormat(__VA_ARGS__))

/**
 * Report an unrecoverable user/configuration error and exit(1).
 */
#define smtos_fatal(...) \
    ::smtos::fatalImpl(__FILE__, __LINE__, ::smtos::logFormat(__VA_ARGS__))

/** Advisory message about questionable but survivable conditions. */
#define smtos_warn(...) \
    ::smtos::warnImpl(::smtos::logFormat(__VA_ARGS__))

/** Neutral status message. */
#define smtos_inform(...) \
    ::smtos::informImpl(::smtos::logFormat(__VA_ARGS__))

/** Cheap always-on invariant check that panics with location info. */
#define smtos_assert(cond, ...)                                           \
    do {                                                                  \
        if (!(cond))                                                      \
            smtos_panic("assertion failed: %s", #cond);                   \
    } while (0)

/**
 * Debug-build invariant check for hot paths. On failure it routes
 * through the crash hook (diagnostics bundle) before aborting; in
 * Release (NDEBUG) it compiles to nothing beyond checking that the
 * condition is a valid expression.
 */
#ifdef NDEBUG
#define SMTOS_CHECK(cond)                                                 \
    do {                                                                  \
        (void)sizeof(!(cond));                                            \
    } while (0)
#else
#define SMTOS_CHECK(cond)                                                 \
    do {                                                                  \
        if (!(cond))                                                      \
            ::smtos::checkFailImpl(__FILE__, __LINE__, #cond);            \
    } while (0)
#endif

#endif // SMTOS_COMMON_LOGGING_H
