/**
 * @file
 * ASCII table formatter shared by the benchmark binaries, so every
 * reproduced paper table/figure prints in a uniform layout.
 */

#ifndef SMTOS_COMMON_TABLE_H
#define SMTOS_COMMON_TABLE_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace smtos {

/**
 * Simple column-aligned text table. Cells are strings; numeric helpers
 * format with fixed precision. Rendered with a header rule and a title.
 */
class TextTable
{
  public:
    explicit TextTable(std::string title) : title_(std::move(title)) {}

    /** Define the column headers (fixes the column count). */
    void header(std::vector<std::string> cols);

    /** Append a row; must match the header's column count. */
    void row(std::vector<std::string> cells);

    /** Format a double with the given number of decimals. */
    static std::string num(double v, int decimals = 2);

    /** Format an integer. */
    static std::string num(std::uint64_t v);

    /** Format a percentage value with a trailing '%'. */
    static std::string percent(double v, int decimals = 1);

    /** Render the table to a stream. */
    void print(std::ostream &os) const;

    /** Render the table to stdout. */
    void print() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace smtos

#endif // SMTOS_COMMON_TABLE_H
