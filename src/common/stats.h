/**
 * @file
 * Lightweight statistics primitives used by the metrics layer.
 */

#ifndef SMTOS_COMMON_STATS_H
#define SMTOS_COMMON_STATS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/logging.h"
#include "snap/fwd.h"

namespace smtos {

/** Percentage of part within whole; 0 when whole is 0. */
inline double
pct(double part, double whole)
{
    return whole == 0.0 ? 0.0 : 100.0 * part / whole;
}

/** Ratio of part to whole; 0 when whole is 0. */
inline double
ratio(double part, double whole)
{
    return whole == 0.0 ? 0.0 : part / whole;
}

/**
 * Running scalar sampler: accumulates samples and reports count, sum,
 * mean, min and max. Used for occupancy statistics such as average
 * outstanding cache misses or fetchable contexts per cycle.
 */
class Sampler
{
  public:
    void
    sample(double v)
    {
        if (count_ == 0 || v < min_) min_ = v;
        if (count_ == 0 || v > max_) max_ = v;
        sum_ += v;
        ++count_;
    }

    /**
     * Record @p k identical samples of @p v at once (quiescence
     * fast-forward). Exact for v == 0 (the idle-cycle case): the sum
     * is unchanged, matching k individual sample(0.0) calls bit for
     * bit.
     */
    void
    sampleN(double v, std::uint64_t k)
    {
        if (k == 0)
            return;
        if (count_ == 0 || v < min_) min_ = v;
        if (count_ == 0 || v > max_) max_ = v;
        if (v != 0.0)
            sum_ += v * static_cast<double>(k);
        count_ += k;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    void
    reset()
    {
        count_ = 0;
        sum_ = min_ = max_ = 0.0;
    }

    /** Build a sampler representing an interval difference. */
    static Sampler
    fromSumCount(double sum, std::uint64_t count)
    {
        Sampler s;
        s.sum_ = sum;
        s.count_ = count;
        return s;
    }

    static constexpr std::uint32_t snapVersion = 1;
    void save(Snapshotter &sp) const;
    void load(Restorer &rs);

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-bucket histogram over integer values; out-of-range samples are
 * clamped into the terminal buckets.
 */
class Histogram
{
  public:
    Histogram(std::int64_t lo, std::int64_t hi, int buckets);

    void sample(std::int64_t v, std::uint64_t weight = 1);

    int numBuckets() const { return static_cast<int>(counts_.size()); }
    std::uint64_t bucketCount(int i) const { return counts_.at(i); }
    std::uint64_t totalSamples() const { return total_; }

    /** Inclusive lower bound of bucket i. */
    std::int64_t bucketLo(int i) const;

    /** Exclusive upper bound of bucket i (== bucketLo(i + 1)). */
    std::int64_t bucketHi(int i) const;

    /**
     * Quantile estimate from the bucket counts, @p q in [0, 1], with
     * linear interpolation inside the containing bucket. Because
     * out-of-range samples are clamped into the terminal buckets, the
     * estimate is itself clamped to [lo, hi]; an empty histogram
     * reports 0.
     */
    double quantile(double q) const;

    double p50() const { return quantile(0.50); }
    double p95() const { return quantile(0.95); }
    double p99() const { return quantile(0.99); }
    double p999() const { return quantile(0.999); }

    double mean() const { return total_ ? weightedSum_ / total_ : 0.0; }

    void reset();

    static constexpr std::uint32_t snapVersion = 1;
    void save(Snapshotter &sp) const;
    void load(Restorer &rs);

  private:
    std::int64_t lo_;
    std::int64_t hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    double weightedSum_ = 0.0;
};

/**
 * Named counter map for ad-hoc event accounting (e.g. kernel entries by
 * reason). Iteration order is deterministic (sorted by name).
 */
class CounterMap
{
  public:
    void add(const std::string &name, std::uint64_t n = 1)
    {
        counts_[name] += n;
    }

    std::uint64_t get(const std::string &name) const;
    std::uint64_t total() const;
    const std::map<std::string, std::uint64_t> &all() const
    {
        return counts_;
    }

    void reset() { counts_.clear(); }

    static constexpr std::uint32_t snapVersion = 1;
    void save(Snapshotter &sp) const;
    void load(Restorer &rs);

  private:
    std::map<std::string, std::uint64_t> counts_;
};

} // namespace smtos

#endif // SMTOS_COMMON_STATS_H
