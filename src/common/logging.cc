#include "common/logging.h"

#include <cstdarg>
#include <vector>

namespace smtos {

std::string
logFormat(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (n < 0) {
        va_end(ap2);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

namespace {

// Thread-local: each parallel-runner worker arms the crash hook for
// the experiment it is currently driving, so a panic on one thread
// dumps that thread's system and never races another worker's hook.
thread_local CrashHook crashHook = nullptr;
thread_local bool inCrashHook = false;

void
runCrashHook(const char *reason)
{
    if (!crashHook || inCrashHook)
        return;
    inCrashHook = true;
    crashHook(reason);
    inCrashHook = false;
}

} // namespace

void
setCrashHook(CrashHook hook)
{
    crashHook = hook;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    runCrashHook(msg.c_str());
    std::abort();
}

void
checkFailImpl(const char *file, int line, const char *cond)
{
    panicImpl(file, line, logFormat("check failed: %s", cond));
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace smtos
