/**
 * @file
 * Lightweight category-based execution tracing (a small cousin of
 * gem5's DPRINTF). Tracing is disabled by default and costs one
 * branch per site when off; when a category is enabled, formatted
 * lines go to the configured sink with the simulated cycle prefixed.
 */

#ifndef SMTOS_COMMON_TRACE_H
#define SMTOS_COMMON_TRACE_H

#include <cstdint>
#include <iosfwd>
#include <string>

#include "common/logging.h"
#include "common/types.h"

namespace smtos {

/** Trace categories (bitmask). */
enum class TraceCat : std::uint32_t
{
    None = 0,
    Fetch = 1u << 0,
    Commit = 1u << 1,
    Squash = 1u << 2,
    Tlb = 1u << 3,
    Sched = 1u << 4,
    Syscall = 1u << 5,
    Net = 1u << 6,
    Fault = 1u << 7,
    All = ~0u,
};

/** Global trace configuration. */
class Trace
{
  public:
    /** Enable categories (OR'ed into the current mask). */
    static void enable(TraceCat cats);

    /** Disable categories. */
    static void disable(TraceCat cats);

    /** Replace the mask wholesale. */
    static void setMask(std::uint32_t mask);

    /** True when any of @p cats is enabled. */
    static bool
    on(TraceCat cats)
    {
        return (mask_ & static_cast<std::uint32_t>(cats)) != 0;
    }

    /** Redirect output (default: stderr). Pass nullptr to restore. */
    static void setSink(std::ostream *os);

    /**
     * Register the live cycle counter the prefix is read from (the
     * Pipeline registers its own clock at construction). While a
     * clock is registered every line carries the current simulated
     * cycle, even for traces emitted from OS-model code between
     * pipeline ticks. Pass nullptr to unregister.
     *
     * The clock registration is thread-local so concurrent systems
     * driven by the parallel experiment runner each prefix their
     * own cycle count.
     */
    static void setClock(const Cycle *src) { clock_ = src; }
    static const Cycle *clock() { return clock_; }

    /** Set a fixed cycle prefix (used when no clock is registered). */
    static void setCycle(Cycle c) { cycle_ = c; }

    /**
     * Open @p path and direct trace output there (the stream is owned
     * by Trace and lives for the process). A failed open warns and
     * leaves the current sink in place.
     */
    static void setFileSink(const std::string &path);

    /** Emit one line (used by the smtos_trace macro). */
    static void emit(TraceCat cat, const std::string &msg);

    /**
     * Write the ring of recently emitted lines (oldest first) to
     * @p os. Every emitted line also lands in a small in-memory ring
     * so a crash-diagnostics bundle can show the last activity; the
     * ring is empty when no trace categories were enabled.
     */
    static void dumpRing(std::ostream &os);

    /** Parse a comma-separated category list ("fetch,tlb,sched"). */
    static std::uint32_t parseCats(const std::string &list);

  private:
    static std::uint32_t mask_;
    static std::ostream *sink_;
    static thread_local Cycle cycle_;
    static thread_local const Cycle *clock_;
};

/** Name of a single category. */
const char *traceCatName(TraceCat c);

} // namespace smtos

/** Trace site: formats only when the category is enabled. */
#define smtos_trace(cat, ...)                                          \
    do {                                                               \
        if (::smtos::Trace::on(cat))                                   \
            ::smtos::Trace::emit(cat, ::smtos::logFormat(__VA_ARGS__)); \
    } while (0)

#endif // SMTOS_COMMON_TRACE_H
