#include "common/trace.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>

#include "common/logging.h"

namespace smtos {

std::uint32_t Trace::mask_ = 0;
std::ostream *Trace::sink_ = nullptr;
thread_local Cycle Trace::cycle_ = 0;
thread_local const Cycle *Trace::clock_ = nullptr;

namespace {

// Ring of the most recent emitted lines, kept for crash diagnostics.
// The mutex makes emit/dumpRing safe under the parallel experiment
// runner; sites pay it only when their category is enabled.
constexpr std::size_t ringCap = 256;
std::string ringLines[ringCap];
std::size_t ringNext = 0;
std::size_t ringCount = 0;
std::mutex ringMutex;

} // namespace

void
Trace::enable(TraceCat cats)
{
    mask_ |= static_cast<std::uint32_t>(cats);
}

void
Trace::disable(TraceCat cats)
{
    mask_ &= ~static_cast<std::uint32_t>(cats);
}

void
Trace::setMask(std::uint32_t mask)
{
    mask_ = mask;
}

void
Trace::setSink(std::ostream *os)
{
    sink_ = os;
}

void
Trace::emit(TraceCat cat, const std::string &msg)
{
    std::ostream &os = sink_ ? *sink_ : std::cerr;
    const Cycle c = clock_ ? *clock_ : cycle_;
    std::string line = logFormat("%llu: %s: ",
                                 static_cast<unsigned long long>(c),
                                 traceCatName(cat)) + msg;
    std::lock_guard<std::mutex> lock(ringMutex);
    os << line << "\n";
    ringLines[ringNext] = std::move(line);
    ringNext = (ringNext + 1) % ringCap;
    if (ringCount < ringCap)
        ++ringCount;
}

void
Trace::dumpRing(std::ostream &os)
{
    std::lock_guard<std::mutex> lock(ringMutex);
    const std::size_t start = (ringNext + ringCap - ringCount) % ringCap;
    for (std::size_t i = 0; i < ringCount; ++i)
        os << ringLines[(start + i) % ringCap] << "\n";
}

void
Trace::setFileSink(const std::string &path)
{
    static std::ofstream file;
    if (file.is_open())
        file.close();
    file.open(path);
    if (file)
        setSink(&file);
    else
        smtos_warn("cannot open trace file '%s'", path.c_str());
}

std::uint32_t
Trace::parseCats(const std::string &list)
{
    std::uint32_t mask = 0;
    std::istringstream in(list);
    std::string tok;
    while (std::getline(in, tok, ',')) {
        if (tok == "fetch")
            mask |= static_cast<std::uint32_t>(TraceCat::Fetch);
        else if (tok == "commit")
            mask |= static_cast<std::uint32_t>(TraceCat::Commit);
        else if (tok == "squash")
            mask |= static_cast<std::uint32_t>(TraceCat::Squash);
        else if (tok == "tlb")
            mask |= static_cast<std::uint32_t>(TraceCat::Tlb);
        else if (tok == "sched")
            mask |= static_cast<std::uint32_t>(TraceCat::Sched);
        else if (tok == "syscall")
            mask |= static_cast<std::uint32_t>(TraceCat::Syscall);
        else if (tok == "net")
            mask |= static_cast<std::uint32_t>(TraceCat::Net);
        else if (tok == "fault")
            mask |= static_cast<std::uint32_t>(TraceCat::Fault);
        else if (tok == "all")
            mask = static_cast<std::uint32_t>(TraceCat::All);
        else if (!tok.empty())
            smtos_warn("unknown trace category '%s'", tok.c_str());
    }
    return mask;
}

const char *
traceCatName(TraceCat c)
{
    switch (c) {
      case TraceCat::Fetch: return "fetch";
      case TraceCat::Commit: return "commit";
      case TraceCat::Squash: return "squash";
      case TraceCat::Tlb: return "tlb";
      case TraceCat::Sched: return "sched";
      case TraceCat::Syscall: return "syscall";
      case TraceCat::Net: return "net";
      case TraceCat::Fault: return "fault";
      default: return "?";
    }
}

} // namespace smtos
