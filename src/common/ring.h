/**
 * @file
 * Fixed-capacity ring buffer for hot-path pipeline structures.
 *
 * A power-of-two-sized circular buffer with monotonically increasing
 * absolute positions: push_back() assigns position tailPos(), and a
 * slot keeps its absolute position for as long as the element lives in
 * the ring. Front pops (commit) advance headPos() forever; back pops
 * (squash) rewind tailPos(), so a position can be reused — consumers
 * that cache positions must re-validate the occupant (the pipeline
 * stores the producer's sequence number alongside its position).
 *
 * All operations are O(1) and allocation-free after init(). Unlike
 * std::deque there is no per-block allocation on push and no pointer
 * chasing on operator[] — indexing is a mask and an add.
 */

#ifndef SMTOS_COMMON_RING_H
#define SMTOS_COMMON_RING_H

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace smtos {

template <typename T>
class FixedRing
{
  public:
    FixedRing() = default;

    /** Size the ring for at least @p capacity live elements. */
    void
    init(std::size_t capacity)
    {
        std::size_t cap = 1;
        while (cap < capacity)
            cap <<= 1;
        buf_.assign(cap, T{});
        mask_ = cap - 1;
        head_ = tail_ = 0;
    }

    bool empty() const { return head_ == tail_; }
    std::size_t size() const
    {
        return static_cast<std::size_t>(tail_ - head_);
    }
    std::size_t capacity() const { return buf_.size(); }

    /** Absolute position of the front element (next to commit). */
    std::uint64_t headPos() const { return head_; }
    /** Absolute position the next push_back() will occupy. */
    std::uint64_t tailPos() const { return tail_; }

    /** True when @p pos currently holds a live element. */
    bool livePos(std::uint64_t pos) const
    {
        return pos >= head_ && pos < tail_;
    }

    T &
    push_back(const T &v)
    {
        smtos_assert(size() < buf_.size());
        T &slot = buf_[tail_ & mask_];
        slot = v;
        ++tail_;
        return slot;
    }

    void
    pop_front()
    {
        smtos_assert(!empty());
        ++head_;
    }

    void
    pop_back()
    {
        smtos_assert(!empty());
        --tail_;
    }

    T &front() { return buf_[head_ & mask_]; }
    const T &front() const { return buf_[head_ & mask_]; }
    T &back() { return buf_[(tail_ - 1) & mask_]; }
    const T &back() const { return buf_[(tail_ - 1) & mask_]; }

    /** Index relative to the front (0 = oldest live element). */
    T &operator[](std::size_t i) { return buf_[(head_ + i) & mask_]; }
    const T &operator[](std::size_t i) const
    {
        return buf_[(head_ + i) & mask_];
    }

    /** Access by absolute position (caller checked livePos()). */
    T &atPos(std::uint64_t pos) { return buf_[pos & mask_]; }
    const T &atPos(std::uint64_t pos) const
    {
        return buf_[pos & mask_];
    }

    void clear() { head_ = tail_ = 0; }

    /**
     * Restore the absolute position span after init() (snapshot
     * restore). Positions must round-trip exactly: cached producer
     * positions and livePos() checks reference the absolute values.
     * Slots in [head, tail) are left value-initialized for the caller
     * to fill via atPos().
     */
    void
    restoreSpan(std::uint64_t head, std::uint64_t tail)
    {
        smtos_assert(tail - head <= buf_.size());
        head_ = head;
        tail_ = tail;
    }

  private:
    std::vector<T> buf_;
    std::uint64_t mask_ = 0;
    std::uint64_t head_ = 0;
    std::uint64_t tail_ = 0;
};

} // namespace smtos

#endif // SMTOS_COMMON_RING_H
