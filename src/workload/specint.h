/**
 * @file
 * The multiprogrammed SPECInt95-like workload: eight synthetic integer
 * applications, each with a start-up phase (input-file reads plus
 * first-touch page faults over a growing heap) and a steady compute
 * phase, with instruction mixes matched to the paper's Table 2 user
 * columns.
 */

#ifndef SMTOS_WORKLOAD_SPECINT_H
#define SMTOS_WORKLOAD_SPECINT_H

#include <cstdint>
#include <memory>
#include <vector>

#include "isa/program.h"
#include "kernel/kernel.h"

namespace smtos {

/** Configuration of the SPECInt-like multiprogram. */
struct SpecIntParams
{
    int numApps = 8;
    /** Start-up input-file chunks (4KB each) read per application. */
    std::uint32_t inputChunks = 160;
    /** Heap (working set) of app i is heapBase + i*heapStep bytes. */
    Addr heapBase = 3ull << 20;
    Addr heapStep = 1ull << 20;
    std::uint64_t seed = 2017;
};

/** A built multiprogrammed workload. */
struct SpecIntWorkload
{
    std::vector<std::unique_ptr<CodeImage>> images;
    std::vector<int> entryFuncs;
    SpecIntParams params;
};

/** Generate the application images. */
SpecIntWorkload buildSpecInt(const SpecIntParams &params);

/** Create one process per application in @p k. */
void installSpecInt(Kernel &k, const SpecIntWorkload &w);

} // namespace smtos

#endif // SMTOS_WORKLOAD_SPECINT_H
