/**
 * @file
 * The Apache-like web server workload: 64 server processes sharing
 * one text image, each looping accept / read-request / parse / stat /
 * open / {read,writev} per chunk / close, driven by the SPECWeb-like
 * client population through the simulated network.
 */

#ifndef SMTOS_WORKLOAD_APACHE_H
#define SMTOS_WORKLOAD_APACHE_H

#include <cstdint>
#include <memory>

#include "isa/program.h"
#include "kernel/kernel.h"

namespace smtos {

/** Configuration of the Apache-like server. */
struct ApacheParams
{
    int numServers = 64;
    Addr heapBytes = 1ull << 20;
    std::uint64_t seed = 4242;
};

/** A built server workload. */
struct ApacheWorkload
{
    std::unique_ptr<CodeImage> image;
    int entryFunc = -1;
    ApacheParams params;
};

/** Generate the server image. */
ApacheWorkload buildApache(const ApacheParams &params);

/** Create the server processes in @p k. */
void installApache(Kernel &k, const ApacheWorkload &w);

} // namespace smtos

#endif // SMTOS_WORKLOAD_APACHE_H
