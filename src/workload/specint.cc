#include "workload/specint.h"

#include "isa/codegen.h"
#include "kernel/layout.h"

namespace smtos {

namespace {

/** Table 2 user-column mix for integer applications. */
CodeProfile
specIntProfile()
{
    CodeProfile p;
    p.loadFrac = 0.20;
    p.storeFrac = 0.10;
    p.fpFrac = 0.024;
    p.mulFrac = 0.06;
    p.physMemFrac = 0.0;
    p.seqFrac = 0.40;
    p.stackFrac = 0.28;
    p.virtRegions = {{regUserGlobals, 3.0}, {regUserHeap, 2.0}};
    p.physRegions = {};
    p.stackRegion = regUserStack;
    p.takenBias = 0.62;
    p.loopFrac = 0.30;
    p.diamondFrac = 0.40;
    p.indirectFrac = 0.035;
    p.loopTripMin = 4;
    p.loopTripMax = 16;
    p.midBranchFrac = 0.08;
    p.instrsPerBlockMin = 4;
    p.instrsPerBlockMax = 11;
    return p;
}

} // namespace

SpecIntWorkload
buildSpecInt(const SpecIntParams &params)
{
    SpecIntWorkload w;
    w.params = params;
    for (int app = 0; app < params.numApps; ++app) {
        auto img = std::make_unique<CodeImage>(
            "specint" + std::to_string(app), userTextBase);
        CodeGen g(*img, specIntProfile(),
                  params.seed * 2654435761ull + app);

        // Leaf and mid-level functions of varying size so the eight
        // apps have distinct text footprints and layouts.
        auto pad = [&] {
            g.genPadding(160 + static_cast<int>(
                g.rng().below(900)));
        };
        std::vector<int> leaves;
        const int num_leaves = 6 + app % 3;
        for (int i = 0; i < num_leaves; ++i) {
            pad();
            leaves.push_back(g.genFunction(
                "leaf" + std::to_string(i),
                8 + static_cast<int>(g.rng().below(8)), {}));
        }
        std::vector<int> mids;
        for (int i = 0; i < 3 + app % 2; ++i) {
            pad();
            mids.push_back(g.genFunction(
                "mid" + std::to_string(i),
                10 + static_cast<int>(g.rng().below(8)), leaves));
        }
        pad();

        // Main: start-up read/touch loop, then an infinite steady
        // loop over the working set with rare system calls.
        const int f_main = img->beginFunction("main", -1);
        img->beginBlock(); // b0: setup
        g.emitWork(5);
        img->beginBlock(); // b1: start-up loop: read a chunk, touch
                           // fresh heap pages, then compute on it
        img->emit(g.makeSyscall(SysRead));
        for (int s = 0; s < 8; ++s) {
            img->emit(g.makeStore(MemPattern::SeqStream, regUserHeap,
                                  0, 640, false));
            img->emit(g.makeAlu());
        }
        g.emitWork(4);
        img->emit(g.makeCall(mids[0]));
        img->beginBlock(); // b2: start-up loop tail
        g.emitWork(6);
        img->emit(g.makeLoop(1, dynamicTrip, 0, 1)); // serviceTrip
        img->beginBlock(); // b3: steady-state loop head
        g.emitWork(7);
        img->beginBlock(); // b4
        g.emitWork(6);
        img->emit(g.makeCall(mids[0]));
        img->beginBlock(); // b5
        g.emitWork(8);
        img->emit(g.makeCall(mids[mids.size() - 1]));
        img->beginBlock(); // b6: rare syscall diamond
        g.emitWork(4);
        img->emit(g.makeCond(8, 0.992)); // usually skip the syscall
        img->beginBlock(); // b7: occasional OS interaction
        img->emit(g.makeSyscall(app % 3 == 0
                                    ? SysBrk
                                    : (app % 3 == 1 ? SysMmap
                                                    : SysMunmap)));
        g.emitWork(3);
        img->beginBlock(); // b8: tail
        g.emitWork(6);
        img->emit(g.makeCall(leaves[0]));
        img->beginBlock(); // b9
        g.emitWork(3);
        img->emit(g.makeJump(3));

        img->finalize();
        w.entryFuncs.push_back(f_main);
        w.images.push_back(std::move(img));
    }
    return w;
}

void
installSpecInt(Kernel &k, const SpecIntWorkload &w)
{
    for (size_t i = 0; i < w.images.size(); ++i) {
        ProcParams cfg;
        cfg.kind = ProcKind::SpecIntApp;
        cfg.image = w.images[i].get();
        cfg.entryFunc = w.entryFuncs[i];
        cfg.seed = w.params.seed ^ (0xabcdull * (i + 1));
        cfg.heapBytes =
            w.params.heapBase + w.params.heapStep * (i % 4);
        cfg.inputChunks = w.params.inputChunks;
        cfg.inputFileId = 1000 + static_cast<int>(i);
        cfg.shareText = false;
        k.createProcess(cfg);
    }
}

} // namespace smtos
