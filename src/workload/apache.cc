#include "workload/apache.h"

#include "isa/codegen.h"
#include "kernel/layout.h"

namespace smtos {

namespace {

/** Table 5 user-column mix for the server code. */
CodeProfile
apacheProfile()
{
    CodeProfile p;
    p.loadFrac = 0.218;
    p.storeFrac = 0.101;
    p.fpFrac = 0.0;
    p.mulFrac = 0.03;
    p.physMemFrac = 0.0;
    p.seqFrac = 0.35;
    p.stackFrac = 0.30;
    p.virtRegions = {{regUserGlobals, 3.0}, {regUserHeap, 1.0}};
    p.physRegions = {};
    p.stackRegion = regUserStack;
    p.takenBias = 0.54;
    p.loopFrac = 0.18;
    p.diamondFrac = 0.45;
    p.indirectFrac = 0.09; // string/table-driven server code
    p.loopTripMin = 2;
    p.loopTripMax = 12;
    p.midBranchFrac = 0.09;
    p.instrsPerBlockMin = 4;
    p.instrsPerBlockMax = 10;
    return p;
}

} // namespace

ApacheWorkload
buildApache(const ApacheParams &params)
{
    ApacheWorkload w;
    w.params = params;
    w.image = std::make_unique<CodeImage>("apache", userTextBase);
    CodeImage &img = *w.image;
    CodeGen g(img, apacheProfile(), params.seed);

    // Helper layers: string/table leaves, then request parsing,
    // header building and logging, spread by padding the way a large
    // real binary's hot functions are.
    auto pad = [&] {
        g.genPadding(60 + static_cast<int>(g.rng().below(240)));
    };
    std::vector<int> leaves;
    for (int i = 0; i < 8; ++i) {
        pad();
        leaves.push_back(g.genFunction(
            "str" + std::to_string(i),
            14 + static_cast<int>(g.rng().below(10)), {}));
    }
    std::vector<int> parse_helpers;
    for (int i = 0; i < 6; ++i) {
        pad();
        parse_helpers.push_back(g.genFunction(
            "parse" + std::to_string(i),
            20 + static_cast<int>(g.rng().below(12)), leaves));
    }
    pad();
    const int hdr_helper =
        g.genFunction("build_headers", 28, parse_helpers);
    pad();
    const int uri_helper =
        g.genFunction("uri_match", 24, leaves);
    pad();
    const int log_helper = g.genFunction("log_fmt", 16, leaves);
    pad();

    // The server main loop.
    const int f_main = img.beginFunction("main", -1);
    img.beginBlock(); // b0: one-time setup
    g.emitWork(192);
    img.beginBlock(); // b1: accept a connection
    g.emitWork(96);
    img.emit(g.makeSyscall(SysAccept));
    g.emitWork(96);
    img.beginBlock(); // b2: read the request
    g.emitWork(64);
    img.emit(g.makeSyscall(SysRead));
    g.emitWork(64);
    img.beginBlock(); // b3: parse loop over the request buffer
    img.emit(g.makeLoad(MemPattern::CopyDst, 0, 0, 64, false));
    g.emitWork(128);
    img.emit(g.makeLoop(3, dynamicTrip, 1, 0)); // trips = copyTrip
    img.beginBlock(); // b4: request handling logic
    g.emitWork(576);
    img.emit(g.makeCall(parse_helpers[0]));
    img.beginBlock(); // b4a: URI resolution
    g.emitWork(192);
    img.emit(g.makeCall(uri_helper));
    img.beginBlock(); // b4b: more parsing
    g.emitWork(128);
    img.emit(g.makeCall(parse_helpers[3]));
    img.beginBlock(); // b5: stat the target file
    g.emitWork(128);
    img.emit(g.makeSyscall(SysStat));
    g.emitWork(160);
    img.emit(g.makeCall(hdr_helper));
    img.beginBlock(); // b6: open
    g.emitWork(96);
    img.emit(g.makeSyscall(SysOpen));
    g.emitWork(96);
    img.beginBlock(); // b7: response loop: read chunk, send chunk
    g.emitWork(64);
    img.emit(g.makeSyscall(SysRead));
    g.emitWork(96);
    img.emit(g.makeSyscall(SysWritev));
    g.emitWork(64);
    img.emit(g.makeLoop(9, dynamicTrip, 2, 1)); // trips = serviceTrip
    img.beginBlock(); // b8: close
    g.emitWork(96);
    img.emit(g.makeSyscall(SysClose));
    g.emitWork(128);
    img.beginBlock(); // b9: occasional access-log write
    g.emitWork(96);
    img.emit(g.makeCond(13, 0.90)); // usually skip the log write
    img.beginBlock(); // b10: log write
    g.emitWork(64);
    img.emit(g.makeSyscall(SysWrite));
    img.emit(g.makeCall(log_helper));
    img.beginBlock(); // b11: back to accept
    g.emitWork(128);
    img.emit(g.makeJump(1));

    img.finalize();
    w.entryFunc = f_main;
    return w;
}

void
installApache(Kernel &k, const ApacheWorkload &w)
{
    for (int i = 0; i < w.params.numServers; ++i) {
        ProcParams cfg;
        cfg.kind = ProcKind::ApacheServer;
        cfg.image = w.image.get();
        cfg.entryFunc = w.entryFunc;
        cfg.seed = w.params.seed ^ (0x5151ull * (i + 3));
        cfg.heapBytes = w.params.heapBytes;
        cfg.shareText = true;
        k.createProcess(cfg);
    }
}

} // namespace smtos
