#include "sim/metrics.h"

#include "common/stats.h"
#include "kernel/tags.h"
#include "obs/probes.h"

namespace smtos {

namespace {

InterferenceStats
diffInterference(const InterferenceStats &a, const InterferenceStats &b)
{
    InterferenceStats d;
    for (int c = 0; c < 2; ++c) {
        d.accesses[c] = a.accesses[c] - b.accesses[c];
        d.misses[c] = a.misses[c] - b.misses[c];
        for (int k = 0; k < numMissCauses; ++k)
            d.cause[c][k] = a.cause[c][k] - b.cause[c][k];
        for (int f = 0; f < 2; ++f)
            d.avoided[c][f] = a.avoided[c][f] - b.avoided[c][f];
    }
    return d;
}

std::map<std::string, std::uint64_t>
diffMap(const std::map<std::string, std::uint64_t> &a,
        const std::map<std::string, std::uint64_t> &b)
{
    std::map<std::string, std::uint64_t> d = a;
    for (const auto &kv : b) {
        auto it = d.find(kv.first);
        if (it != d.end())
            it->second -= kv.second;
    }
    return d;
}

} // namespace

LatencySummary
LatencySummary::of(const Histogram &h)
{
    LatencySummary s;
    s.count = h.totalSamples();
    s.mean = h.mean();
    s.p50 = h.p50();
    s.p95 = h.p95();
    s.p99 = h.p99();
    s.p999 = h.p999();
    return s;
}

MetricsSnapshot
MetricsSnapshot::capture(System &sys)
{
    MetricsSnapshot s;
    Pipeline &p = sys.pipeline();
    s.core = p.stats();
    s.btb = p.btb().stats();
    s.btbWrongTarget = p.btb().wrongTargetHits();
    s.l1i = sys.hierarchy().l1i().stats();
    s.l1d = sys.hierarchy().l1d().stats();
    s.l2 = sys.hierarchy().l2().stats();
    s.itlb = p.itlb().stats();
    s.dtlb = p.dtlb().stats();
    s.imissIntegral = sys.hierarchy().imissIntegral();
    s.dmissIntegral = sys.hierarchy().dmissIntegral();
    s.l2missIntegral = sys.hierarchy().l2missIntegral();
    s.mmEntries = sys.kernel().mmEntries().all();
    s.syscalls = sys.kernel().syscallEntries().all();
    s.requestsServed = sys.kernel().requestsServed();
    s.contextSwitches = sys.kernel().contextSwitches();
    s.faults = sys.kernel().faultCounters();
    s.dram = sys.hierarchy().memctrl().stats();
    if (sys.kernel().params().enableNetwork) {
        const ClientPopulation &cl = sys.kernel().clients();
        s.latency = LatencySummary::of(cl.latency());
        s.retriedLatency = LatencySummary::of(cl.retriedLatency());
    }
    if (sys.probes() && sys.probes()->reqtrace()) {
        s.reqtrace = sys.probes()->reqtrace()->stats();
        s.reqtrace.enabled = 1;
    }
    s.overload = sys.kernel().overloadStats();
    s.fidelity.funcInstrs = p.funcInstrs();
    s.fidelity.funcCycles = p.funcCycles();
    s.fidelity.switches = p.fidelitySwitches();
    return s;
}

MetricsSnapshot
MetricsSnapshot::delta(const MetricsSnapshot &e) const
{
    MetricsSnapshot d = *this;

    d.core.cycles = core.cycles - e.core.cycles;
    d.core.fetched = core.fetched - e.core.fetched;
    d.core.fetchedWrongPath =
        core.fetchedWrongPath - e.core.fetchedWrongPath;
    d.core.squashed = core.squashed - e.core.squashed;
    d.core.issued = core.issued - e.core.issued;
    for (int m = 0; m < numModes; ++m)
        d.core.retired[m] = core.retired[m] - e.core.retired[m];
    for (int t = 0; t < 64; ++t)
        d.core.retiredByTag[t] =
            core.retiredByTag[t] - e.core.retiredByTag[t];
    for (int c = 0; c < 2; ++c) {
        for (int k = 0; k < numMixClasses; ++k)
            d.core.mix[c][k] = core.mix[c][k] - e.core.mix[c][k];
        for (int k = 0; k < 2; ++k)
            d.core.physMem[c][k] =
                core.physMem[c][k] - e.core.physMem[c][k];
        d.core.condRetired[c] =
            core.condRetired[c] - e.core.condRetired[c];
        d.core.condTaken[c] = core.condTaken[c] - e.core.condTaken[c];
        d.core.condMispred[c] =
            core.condMispred[c] - e.core.condMispred[c];
        d.core.targetMispred[c] =
            core.targetMispred[c] - e.core.targetMispred[c];
    }
    d.core.zeroFetchCycles =
        core.zeroFetchCycles - e.core.zeroFetchCycles;
    d.core.zeroIssueCycles =
        core.zeroIssueCycles - e.core.zeroIssueCycles;
    d.core.maxIssueCycles =
        core.maxIssueCycles - e.core.maxIssueCycles;
    d.core.fetchableContexts = Sampler::fromSumCount(
        core.fetchableContexts.sum() - e.core.fetchableContexts.sum(),
        core.fetchableContexts.count() -
            e.core.fetchableContexts.count());

    d.btb = diffInterference(btb, e.btb);
    d.btbWrongTarget = btbWrongTarget - e.btbWrongTarget;
    d.l1i = diffInterference(l1i, e.l1i);
    d.l1d = diffInterference(l1d, e.l1d);
    d.l2 = diffInterference(l2, e.l2);
    d.itlb = diffInterference(itlb, e.itlb);
    d.dtlb = diffInterference(dtlb, e.dtlb);
    d.imissIntegral = imissIntegral - e.imissIntegral;
    d.dmissIntegral = dmissIntegral - e.dmissIntegral;
    d.l2missIntegral = l2missIntegral - e.l2missIntegral;
    d.mmEntries = diffMap(mmEntries, e.mmEntries);
    d.syscalls = diffMap(syscalls, e.syscalls);
    d.requestsServed = requestsServed - e.requestsServed;
    d.contextSwitches = contextSwitches - e.contextSwitches;
    d.faults = faults.delta(e.faults);
    d.dram = dram.delta(e.dram);
    d.latency.count = latency.count - e.latency.count;
    d.retriedLatency.count =
        retriedLatency.count - e.retriedLatency.count;
    d.reqtrace = reqtrace.delta(e.reqtrace);
    d.overload = overload.delta(e.overload);
    d.fidelity.funcInstrs = fidelity.funcInstrs - e.fidelity.funcInstrs;
    d.fidelity.funcCycles = fidelity.funcCycles - e.fidelity.funcCycles;
    d.fidelity.switches = fidelity.switches - e.fidelity.switches;
    return d;
}

ModeShares
modeShares(const MetricsSnapshot &d)
{
    const double total = static_cast<double>(d.core.totalRetired());
    ModeShares s;
    s.userPct = pct(static_cast<double>(
                        d.core.retired[static_cast<int>(Mode::User)]),
                    total);
    s.kernelPct = pct(
        static_cast<double>(d.core.retired[static_cast<int>(
            Mode::Kernel)]),
        total);
    s.palPct = pct(static_cast<double>(
                       d.core.retired[static_cast<int>(Mode::Pal)]),
                   total);
    s.idlePct = pct(static_cast<double>(
                        d.core.retired[static_cast<int>(Mode::Idle)]),
                    total);
    return s;
}

double
tagSharePct(const MetricsSnapshot &d, int tag)
{
    return pct(static_cast<double>(d.core.retiredByTag[tag]),
               static_cast<double>(d.core.totalRetired()));
}

double
groupSharePct(const MetricsSnapshot &d, ServiceGroup g)
{
    double sum = 0.0;
    for (int t = 0; t < NumServiceTags; ++t)
        if (serviceGroupOf(t) == g)
            sum += tagSharePct(d, t);
    return sum;
}

ArchMetrics
archMetrics(const MetricsSnapshot &d)
{
    ArchMetrics a;
    const double cycles = static_cast<double>(d.core.cycles);
    a.ipc = ratio(static_cast<double>(d.core.totalRetired()), cycles);
    a.fetchableContexts = d.core.fetchableContexts.mean();
    a.branchMispredPct =
        pct(static_cast<double>(d.core.condMispred[0] +
                                d.core.condMispred[1]),
            static_cast<double>(d.core.condRetired[0] +
                                d.core.condRetired[1]));
    a.squashedPct = pct(static_cast<double>(d.core.squashed),
                        static_cast<double>(d.core.fetched));
    auto rate = [](const InterferenceStats &s) {
        return pct(static_cast<double>(s.totalMisses()),
                   static_cast<double>(s.totalAccesses()));
    };
    a.btbMissPct = rate(d.btb);
    a.l1iMissPct = rate(d.l1i);
    a.l1dMissPct = rate(d.l1d);
    a.l2MissPct = rate(d.l2);
    a.itlbMissPct = rate(d.itlb);
    a.dtlbMissPct = rate(d.dtlb);
    a.zeroFetchPct =
        pct(static_cast<double>(d.core.zeroFetchCycles), cycles);
    a.zeroIssuePct =
        pct(static_cast<double>(d.core.zeroIssueCycles), cycles);
    a.maxIssuePct =
        pct(static_cast<double>(d.core.maxIssueCycles), cycles);
    a.outstandingImiss = ratio(d.imissIntegral, cycles);
    a.outstandingDmiss = ratio(d.dmissIntegral, cycles);
    a.outstandingL2miss = ratio(d.l2missIntegral, cycles);
    return a;
}

MixRow
mixRow(const MetricsSnapshot &d, bool kernel_class)
{
    const int c = kernel_class ? 1 : 0;
    double total = 0.0;
    for (int k = 0; k < numMixClasses; ++k)
        total += static_cast<double>(d.core.mix[c][k]);
    auto share = [&](MixClass mc) {
        return pct(static_cast<double>(
                       d.core.mix[c][static_cast<int>(mc)]),
                   total);
    };
    MixRow r;
    r.loadPct = share(MixClass::Load);
    r.storePct = share(MixClass::Store);
    r.loadPhysPct =
        pct(static_cast<double>(d.core.physMem[c][0]),
            static_cast<double>(
                d.core.mix[c][static_cast<int>(MixClass::Load)]));
    r.storePhysPct =
        pct(static_cast<double>(d.core.physMem[c][1]),
            static_cast<double>(
                d.core.mix[c][static_cast<int>(MixClass::Store)]));
    const double branches =
        static_cast<double>(
            d.core.mix[c][static_cast<int>(MixClass::CondBranch)] +
            d.core.mix[c][static_cast<int>(MixClass::UncondBranch)] +
            d.core.mix[c][static_cast<int>(MixClass::IndirectJump)] +
            d.core.mix[c][static_cast<int>(MixClass::PalCallReturn)]);
    r.branchPct = pct(branches, total);
    r.condPct = pct(
        static_cast<double>(
            d.core.mix[c][static_cast<int>(MixClass::CondBranch)]),
        branches);
    r.uncondPct = pct(
        static_cast<double>(
            d.core.mix[c][static_cast<int>(MixClass::UncondBranch)]),
        branches);
    r.indirectPct = pct(
        static_cast<double>(
            d.core.mix[c][static_cast<int>(MixClass::IndirectJump)]),
        branches);
    r.palPct = pct(
        static_cast<double>(
            d.core.mix[c][static_cast<int>(MixClass::PalCallReturn)]),
        branches);
    r.condTakenPct =
        pct(static_cast<double>(d.core.condTaken[c]),
            static_cast<double>(d.core.condRetired[c]));
    r.otherIntPct = share(MixClass::OtherInt);
    r.fpPct = share(MixClass::Fp);
    return r;
}

MissBreakdown
missBreakdown(const InterferenceStats &s)
{
    MissBreakdown b;
    const double all_misses = static_cast<double>(s.totalMisses());
    for (int c = 0; c < 2; ++c) {
        b.totalMissRate[c] =
            pct(static_cast<double>(s.misses[c]),
                static_cast<double>(s.accesses[c]));
        for (int k = 0; k < numMissCauses; ++k)
            b.causePct[c][k] =
                pct(static_cast<double>(s.cause[c][k]), all_misses);
    }
    return b;
}

SharingBreakdown
sharingBreakdown(const InterferenceStats &s)
{
    SharingBreakdown b;
    const double all_misses = static_cast<double>(s.totalMisses());
    for (int a = 0; a < 2; ++a)
        for (int f = 0; f < 2; ++f)
            b.avoidedPct[a][f] =
                pct(static_cast<double>(s.avoided[a][f]), all_misses);
    return b;
}

} // namespace smtos
