#include "sim/metrics.h"

#include <algorithm>

#include "common/stats.h"
#include "kernel/kernel.h"
#include "kernel/tags.h"
#include "obs/probes.h"

namespace smtos {

namespace {

InterferenceStats
diffInterference(const InterferenceStats &a, const InterferenceStats &b)
{
    InterferenceStats d;
    for (int c = 0; c < 2; ++c) {
        d.accesses[c] = a.accesses[c] - b.accesses[c];
        d.misses[c] = a.misses[c] - b.misses[c];
        for (int k = 0; k < numMissCauses; ++k)
            d.cause[c][k] = a.cause[c][k] - b.cause[c][k];
        for (int f = 0; f < 2; ++f)
            d.avoided[c][f] = a.avoided[c][f] - b.avoided[c][f];
    }
    return d;
}

std::map<std::string, std::uint64_t>
diffMap(const std::map<std::string, std::uint64_t> &a,
        const std::map<std::string, std::uint64_t> &b)
{
    std::map<std::string, std::uint64_t> d = a;
    for (const auto &kv : b) {
        auto it = d.find(kv.first);
        if (it != d.end())
            it->second -= kv.second;
    }
    return d;
}

/** Counter-wise CoreStats difference (kernelEntries keeps the later
 *  capture's absolute values, the historical behavior). */
CoreStats
diffCore(const CoreStats &a, const CoreStats &b)
{
    CoreStats d = a;
    d.cycles = a.cycles - b.cycles;
    d.fetched = a.fetched - b.fetched;
    d.fetchedWrongPath = a.fetchedWrongPath - b.fetchedWrongPath;
    d.squashed = a.squashed - b.squashed;
    d.issued = a.issued - b.issued;
    for (int m = 0; m < numModes; ++m)
        d.retired[m] = a.retired[m] - b.retired[m];
    for (int t = 0; t < 64; ++t)
        d.retiredByTag[t] = a.retiredByTag[t] - b.retiredByTag[t];
    for (int c = 0; c < 2; ++c) {
        for (int k = 0; k < numMixClasses; ++k)
            d.mix[c][k] = a.mix[c][k] - b.mix[c][k];
        for (int k = 0; k < 2; ++k)
            d.physMem[c][k] = a.physMem[c][k] - b.physMem[c][k];
        d.condRetired[c] = a.condRetired[c] - b.condRetired[c];
        d.condTaken[c] = a.condTaken[c] - b.condTaken[c];
        d.condMispred[c] = a.condMispred[c] - b.condMispred[c];
        d.targetMispred[c] = a.targetMispred[c] - b.targetMispred[c];
    }
    d.zeroFetchCycles = a.zeroFetchCycles - b.zeroFetchCycles;
    d.zeroIssueCycles = a.zeroIssueCycles - b.zeroIssueCycles;
    d.maxIssueCycles = a.maxIssueCycles - b.maxIssueCycles;
    d.fetchableContexts = Sampler::fromSumCount(
        a.fetchableContexts.sum() - b.fetchableContexts.sum(),
        a.fetchableContexts.count() - b.fetchableContexts.count());
    return d;
}

/** Sum @p s into @p into for the machine-level aggregate. The chip
 *  runs in lockstep, so cycles takes the max instead of summing. */
void
addCore(CoreStats &into, const CoreStats &s)
{
    into.cycles = std::max(into.cycles, s.cycles);
    into.fetched += s.fetched;
    into.fetchedWrongPath += s.fetchedWrongPath;
    into.squashed += s.squashed;
    into.issued += s.issued;
    for (int m = 0; m < numModes; ++m)
        into.retired[m] += s.retired[m];
    for (int t = 0; t < 64; ++t)
        into.retiredByTag[t] += s.retiredByTag[t];
    for (int c = 0; c < 2; ++c) {
        for (int k = 0; k < numMixClasses; ++k)
            into.mix[c][k] += s.mix[c][k];
        for (int k = 0; k < 2; ++k)
            into.physMem[c][k] += s.physMem[c][k];
        into.condRetired[c] += s.condRetired[c];
        into.condTaken[c] += s.condTaken[c];
        into.condMispred[c] += s.condMispred[c];
        into.targetMispred[c] += s.targetMispred[c];
    }
    into.zeroFetchCycles += s.zeroFetchCycles;
    into.zeroIssueCycles += s.zeroIssueCycles;
    into.maxIssueCycles += s.maxIssueCycles;
    into.fetchableContexts = Sampler::fromSumCount(
        into.fetchableContexts.sum() + s.fetchableContexts.sum(),
        into.fetchableContexts.count() + s.fetchableContexts.count());
    for (const auto &kv : s.kernelEntries.all())
        into.kernelEntries.add(kv.first, kv.second);
}

void
addInterference(InterferenceStats &into, const InterferenceStats &s)
{
    for (int c = 0; c < 2; ++c) {
        into.accesses[c] += s.accesses[c];
        into.misses[c] += s.misses[c];
        for (int k = 0; k < numMissCauses; ++k)
            into.cause[c][k] += s.cause[c][k];
        for (int f = 0; f < 2; ++f)
            into.avoided[c][f] += s.avoided[c][f];
    }
}

LockStats
lockStatsOf(const KLock &l)
{
    LockStats s;
    s.acquisitions = l.acquisitions;
    s.contended = l.contended;
    s.spinCycles = l.spinCycles;
    s.holdCycles = l.holdCycles;
    return s;
}

} // namespace

LockStats
LockStats::delta(const LockStats &e) const
{
    LockStats d;
    d.acquisitions = acquisitions - e.acquisitions;
    d.contended = contended - e.contended;
    d.spinCycles = spinCycles - e.spinCycles;
    d.holdCycles = holdCycles - e.holdCycles;
    return d;
}

SmpStats
SmpStats::delta(const SmpStats &e) const
{
    SmpStats d = *this;
    d.connLock = connLock.delta(e.connLock);
    d.mbufLock = mbufLock.delta(e.mbufLock);
    d.schedLock = schedLock.delta(e.schedLock);
    d.workSteals = workSteals - e.workSteals;
    d.shootdownIpis = shootdownIpis - e.shootdownIpis;
    d.shootdownsDelivered =
        shootdownsDelivered - e.shootdownsDelivered;
    d.coherence = coherence.delta(e.coherence);
    return d;
}

LatencySummary
LatencySummary::of(const Histogram &h)
{
    LatencySummary s;
    s.count = h.totalSamples();
    s.mean = h.mean();
    s.p50 = h.p50();
    s.p95 = h.p95();
    s.p99 = h.p99();
    s.p999 = h.p999();
    return s;
}

MetricsSnapshot
MetricsSnapshot::capture(System &sys)
{
    MetricsSnapshot s;
    Pipeline &p = sys.pipeline();
    s.core = p.stats();
    s.btb = p.btb().stats();
    s.btbWrongTarget = p.btb().wrongTargetHits();
    s.l1i = sys.hierarchy().l1i().stats();
    s.l1d = sys.hierarchy().l1d().stats();
    s.l2 = sys.hierarchy().l2().stats();
    s.itlb = p.itlb().stats();
    s.dtlb = p.dtlb().stats();
    s.imissIntegral = sys.hierarchy().imissIntegral();
    s.dmissIntegral = sys.hierarchy().dmissIntegral();
    s.l2missIntegral = sys.hierarchy().l2missIntegral();
    s.mmEntries = sys.kernel().mmEntries().all();
    s.syscalls = sys.kernel().syscallEntries().all();
    s.requestsServed = sys.kernel().requestsServed();
    s.contextSwitches = sys.kernel().contextSwitches();
    s.faults = sys.kernel().faultCounters();
    s.dram = sys.hierarchy().memctrl().stats();
    if (sys.kernel().params().enableNetwork) {
        const ClientPopulation &cl = sys.kernel().clients();
        s.latency = LatencySummary::of(cl.latency());
        s.retriedLatency = LatencySummary::of(cl.retriedLatency());
    }
    if (sys.probes() && sys.probes()->reqtrace()) {
        s.reqtrace = sys.probes()->reqtrace()->stats();
        s.reqtrace.enabled = 1;
    }
    s.overload = sys.kernel().overloadStats();
    s.fidelity.funcInstrs = p.funcInstrs();
    s.fidelity.funcCycles = p.funcCycles();
    s.fidelity.switches = p.fidelitySwitches();

    // CMP capture: per-core slices of the private structures, with
    // the top-level fields re-aggregated machine-wide. cores = 1
    // keeps the historical single-core capture exactly.
    if (sys.numCores() > 1) {
        const Kernel &k = sys.kernel();
        for (int c = 0; c < sys.numCores(); ++c) {
            Pipeline &pc = sys.pipeline(c);
            CoreSlice slice;
            slice.core = pc.stats();
            slice.btb = pc.btb().stats();
            slice.btbWrongTarget = pc.btb().wrongTargetHits();
            slice.l1i = sys.hierarchy(c).l1i().stats();
            slice.l1d = sys.hierarchy(c).l1d().stats();
            slice.itlb = pc.itlb().stats();
            slice.dtlb = pc.dtlb().stats();
            slice.lockSpinCycles = k.lockSpinCycles(c);
            s.cores.push_back(slice);
        }
        s.core = CoreStats{};
        s.btb = s.l1i = s.l1d = s.itlb = s.dtlb = InterferenceStats{};
        s.btbWrongTarget = 0;
        s.imissIntegral = s.dmissIntegral = 0.0;
        for (int c = 0; c < sys.numCores(); ++c) {
            const CoreSlice &slice =
                s.cores[static_cast<std::size_t>(c)];
            addCore(s.core, slice.core);
            addInterference(s.btb, slice.btb);
            addInterference(s.l1i, slice.l1i);
            addInterference(s.l1d, slice.l1d);
            addInterference(s.itlb, slice.itlb);
            addInterference(s.dtlb, slice.dtlb);
            s.btbWrongTarget += slice.btbWrongTarget;
            s.imissIntegral += sys.hierarchy(c).imissIntegral();
            s.dmissIntegral += sys.hierarchy(c).dmissIntegral();
        }
        s.smp.enabled = 1;
        s.smp.connLock = lockStatsOf(k.connLock());
        s.smp.mbufLock = lockStatsOf(k.mbufLock());
        for (const KLock &sl : k.schedLocks()) {
            const LockStats ls = lockStatsOf(sl);
            s.smp.schedLock.acquisitions += ls.acquisitions;
            s.smp.schedLock.contended += ls.contended;
            s.smp.schedLock.spinCycles += ls.spinCycles;
            s.smp.schedLock.holdCycles += ls.holdCycles;
        }
        s.smp.workSteals = k.workSteals();
        s.smp.shootdownIpis = k.shootdownIpis();
        s.smp.shootdownsDelivered = k.shootdownsDelivered();
        if (sys.coherence())
            s.smp.coherence = sys.coherence()->stats();
    }
    return s;
}

MetricsSnapshot
MetricsSnapshot::delta(const MetricsSnapshot &e) const
{
    MetricsSnapshot d = *this;

    d.core = diffCore(core, e.core);
    d.btb = diffInterference(btb, e.btb);
    d.btbWrongTarget = btbWrongTarget - e.btbWrongTarget;
    d.l1i = diffInterference(l1i, e.l1i);
    d.l1d = diffInterference(l1d, e.l1d);
    d.l2 = diffInterference(l2, e.l2);
    d.itlb = diffInterference(itlb, e.itlb);
    d.dtlb = diffInterference(dtlb, e.dtlb);
    d.imissIntegral = imissIntegral - e.imissIntegral;
    d.dmissIntegral = dmissIntegral - e.dmissIntegral;
    d.l2missIntegral = l2missIntegral - e.l2missIntegral;
    d.mmEntries = diffMap(mmEntries, e.mmEntries);
    d.syscalls = diffMap(syscalls, e.syscalls);
    d.requestsServed = requestsServed - e.requestsServed;
    d.contextSwitches = contextSwitches - e.contextSwitches;
    d.faults = faults.delta(e.faults);
    d.dram = dram.delta(e.dram);
    d.latency.count = latency.count - e.latency.count;
    d.retriedLatency.count =
        retriedLatency.count - e.retriedLatency.count;
    d.reqtrace = reqtrace.delta(e.reqtrace);
    d.overload = overload.delta(e.overload);
    d.fidelity.funcInstrs = fidelity.funcInstrs - e.fidelity.funcInstrs;
    d.fidelity.funcCycles = fidelity.funcCycles - e.fidelity.funcCycles;
    d.fidelity.switches = fidelity.switches - e.fidelity.switches;
    if (cores.size() == e.cores.size()) {
        for (std::size_t c = 0; c < cores.size(); ++c) {
            CoreSlice &ds = d.cores[c];
            const CoreSlice &es = e.cores[c];
            ds.core = diffCore(cores[c].core, es.core);
            ds.btb = diffInterference(cores[c].btb, es.btb);
            ds.l1i = diffInterference(cores[c].l1i, es.l1i);
            ds.l1d = diffInterference(cores[c].l1d, es.l1d);
            ds.itlb = diffInterference(cores[c].itlb, es.itlb);
            ds.dtlb = diffInterference(cores[c].dtlb, es.dtlb);
            ds.btbWrongTarget =
                cores[c].btbWrongTarget - es.btbWrongTarget;
            ds.lockSpinCycles =
                cores[c].lockSpinCycles - es.lockSpinCycles;
        }
    }
    d.smp = smp.delta(e.smp);
    return d;
}

ModeShares
modeShares(const MetricsSnapshot &d)
{
    const double total = static_cast<double>(d.core.totalRetired());
    ModeShares s;
    s.userPct = pct(static_cast<double>(
                        d.core.retired[static_cast<int>(Mode::User)]),
                    total);
    s.kernelPct = pct(
        static_cast<double>(d.core.retired[static_cast<int>(
            Mode::Kernel)]),
        total);
    s.palPct = pct(static_cast<double>(
                       d.core.retired[static_cast<int>(Mode::Pal)]),
                   total);
    s.idlePct = pct(static_cast<double>(
                        d.core.retired[static_cast<int>(Mode::Idle)]),
                    total);
    return s;
}

double
tagSharePct(const MetricsSnapshot &d, int tag)
{
    return pct(static_cast<double>(d.core.retiredByTag[tag]),
               static_cast<double>(d.core.totalRetired()));
}

double
groupSharePct(const MetricsSnapshot &d, ServiceGroup g)
{
    double sum = 0.0;
    for (int t = 0; t < NumServiceTags; ++t)
        if (serviceGroupOf(t) == g)
            sum += tagSharePct(d, t);
    return sum;
}

ArchMetrics
archMetrics(const MetricsSnapshot &d)
{
    ArchMetrics a;
    const double cycles = static_cast<double>(d.core.cycles);
    a.ipc = ratio(static_cast<double>(d.core.totalRetired()), cycles);
    a.fetchableContexts = d.core.fetchableContexts.mean();
    a.branchMispredPct =
        pct(static_cast<double>(d.core.condMispred[0] +
                                d.core.condMispred[1]),
            static_cast<double>(d.core.condRetired[0] +
                                d.core.condRetired[1]));
    a.squashedPct = pct(static_cast<double>(d.core.squashed),
                        static_cast<double>(d.core.fetched));
    auto rate = [](const InterferenceStats &s) {
        return pct(static_cast<double>(s.totalMisses()),
                   static_cast<double>(s.totalAccesses()));
    };
    a.btbMissPct = rate(d.btb);
    a.l1iMissPct = rate(d.l1i);
    a.l1dMissPct = rate(d.l1d);
    a.l2MissPct = rate(d.l2);
    a.itlbMissPct = rate(d.itlb);
    a.dtlbMissPct = rate(d.dtlb);
    a.zeroFetchPct =
        pct(static_cast<double>(d.core.zeroFetchCycles), cycles);
    a.zeroIssuePct =
        pct(static_cast<double>(d.core.zeroIssueCycles), cycles);
    a.maxIssuePct =
        pct(static_cast<double>(d.core.maxIssueCycles), cycles);
    a.outstandingImiss = ratio(d.imissIntegral, cycles);
    a.outstandingDmiss = ratio(d.dmissIntegral, cycles);
    a.outstandingL2miss = ratio(d.l2missIntegral, cycles);
    return a;
}

MixRow
mixRow(const MetricsSnapshot &d, bool kernel_class)
{
    const int c = kernel_class ? 1 : 0;
    double total = 0.0;
    for (int k = 0; k < numMixClasses; ++k)
        total += static_cast<double>(d.core.mix[c][k]);
    auto share = [&](MixClass mc) {
        return pct(static_cast<double>(
                       d.core.mix[c][static_cast<int>(mc)]),
                   total);
    };
    MixRow r;
    r.loadPct = share(MixClass::Load);
    r.storePct = share(MixClass::Store);
    r.loadPhysPct =
        pct(static_cast<double>(d.core.physMem[c][0]),
            static_cast<double>(
                d.core.mix[c][static_cast<int>(MixClass::Load)]));
    r.storePhysPct =
        pct(static_cast<double>(d.core.physMem[c][1]),
            static_cast<double>(
                d.core.mix[c][static_cast<int>(MixClass::Store)]));
    const double branches =
        static_cast<double>(
            d.core.mix[c][static_cast<int>(MixClass::CondBranch)] +
            d.core.mix[c][static_cast<int>(MixClass::UncondBranch)] +
            d.core.mix[c][static_cast<int>(MixClass::IndirectJump)] +
            d.core.mix[c][static_cast<int>(MixClass::PalCallReturn)]);
    r.branchPct = pct(branches, total);
    r.condPct = pct(
        static_cast<double>(
            d.core.mix[c][static_cast<int>(MixClass::CondBranch)]),
        branches);
    r.uncondPct = pct(
        static_cast<double>(
            d.core.mix[c][static_cast<int>(MixClass::UncondBranch)]),
        branches);
    r.indirectPct = pct(
        static_cast<double>(
            d.core.mix[c][static_cast<int>(MixClass::IndirectJump)]),
        branches);
    r.palPct = pct(
        static_cast<double>(
            d.core.mix[c][static_cast<int>(MixClass::PalCallReturn)]),
        branches);
    r.condTakenPct =
        pct(static_cast<double>(d.core.condTaken[c]),
            static_cast<double>(d.core.condRetired[c]));
    r.otherIntPct = share(MixClass::OtherInt);
    r.fpPct = share(MixClass::Fp);
    return r;
}

MissBreakdown
missBreakdown(const InterferenceStats &s)
{
    MissBreakdown b;
    const double all_misses = static_cast<double>(s.totalMisses());
    for (int c = 0; c < 2; ++c) {
        b.totalMissRate[c] =
            pct(static_cast<double>(s.misses[c]),
                static_cast<double>(s.accesses[c]));
        for (int k = 0; k < numMissCauses; ++k)
            b.causePct[c][k] =
                pct(static_cast<double>(s.cause[c][k]), all_misses);
    }
    return b;
}

SharingBreakdown
sharingBreakdown(const InterferenceStats &s)
{
    SharingBreakdown b;
    const double all_misses = static_cast<double>(s.totalMisses());
    for (int a = 0; a < 2; ++a)
        for (int f = 0; f < 2; ++f)
            b.avoidedPct[a][f] =
                pct(static_cast<double>(s.avoided[a][f]), all_misses);
    return b;
}

} // namespace smtos
