/**
 * @file
 * Metrics export: serialize a MetricsSnapshot (or delta) as JSON or
 * CSV so downstream tooling can plot the reproduced figures.
 */

#ifndef SMTOS_SIM_EXPORT_H
#define SMTOS_SIM_EXPORT_H

#include <iosfwd>
#include <string>

#include "sim/metrics.h"

namespace smtos {

/** Write a snapshot delta as a single JSON object. */
void writeJson(std::ostream &os, const MetricsSnapshot &d);

/**
 * Write the body of the JSON object (everything between the braces,
 * no surrounding `{}`), so callers can embed the snapshot fields in a
 * larger object — e.g. the interval-sampling rows of ObsSession.
 */
void writeJsonFields(std::ostream &os, const MetricsSnapshot &d);

/** JSON string convenience wrapper. */
std::string toJson(const MetricsSnapshot &d);

/**
 * Append one CSV row of headline metrics (with a header row first
 * when @p with_header). Columns: label, cycles, instructions, ipc,
 * user_pct, kernel_pct, pal_pct, idle_pct, l1i_miss, l1d_miss,
 * l2_miss, itlb_miss, dtlb_miss, br_mispred, squashed_pct.
 */
void writeCsvRow(std::ostream &os, const std::string &label,
                 const MetricsSnapshot &d, bool with_header = false);

} // namespace smtos

#endif // SMTOS_SIM_EXPORT_H
