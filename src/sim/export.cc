#include "sim/export.h"

#include <ostream>
#include <sstream>

namespace smtos {

namespace {

void
jsonInterference(std::ostream &os, const char *name,
                 const InterferenceStats &s)
{
    os << "\"" << name << "\":{";
    os << "\"accesses\":[" << s.accesses[0] << "," << s.accesses[1]
       << "],";
    os << "\"misses\":[" << s.misses[0] << "," << s.misses[1] << "],";
    os << "\"causes\":[[";
    for (int c = 0; c < 2; ++c) {
        for (int k = 0; k < numMissCauses; ++k) {
            os << s.cause[c][k];
            if (k + 1 < numMissCauses)
                os << ",";
        }
        os << (c == 0 ? "],[" : "]],");
    }
    os << "\"avoided\":[[" << s.avoided[0][0] << ","
       << s.avoided[0][1] << "],[" << s.avoided[1][0] << ","
       << s.avoided[1][1] << "]]}";
}

} // namespace

void
writeJsonFields(std::ostream &os, const MetricsSnapshot &d)
{
    const ArchMetrics a = archMetrics(d);
    const ModeShares m = modeShares(d);
    os << "\"cycles\":" << d.core.cycles << ",";
    os << "\"instructions\":" << d.core.totalRetired() << ",";
    os << "\"ipc\":" << a.ipc << ",";
    os << "\"modes\":{\"user\":" << m.userPct
       << ",\"kernel\":" << m.kernelPct << ",\"pal\":" << m.palPct
       << ",\"idle\":" << m.idlePct << "},";
    os << "\"rates\":{\"l1i\":" << a.l1iMissPct
       << ",\"l1d\":" << a.l1dMissPct << ",\"l2\":" << a.l2MissPct
       << ",\"itlb\":" << a.itlbMissPct
       << ",\"dtlb\":" << a.dtlbMissPct
       << ",\"btb\":" << a.btbMissPct
       << ",\"br_mispred\":" << a.branchMispredPct
       << ",\"squashed\":" << a.squashedPct << "},";
    os << "\"fetch\":{\"zero_fetch\":" << a.zeroFetchPct
       << ",\"zero_issue\":" << a.zeroIssuePct
       << ",\"max_issue\":" << a.maxIssuePct
       << ",\"fetchable\":" << a.fetchableContexts << "},";
    os << "\"outstanding\":{\"imiss\":" << a.outstandingImiss
       << ",\"dmiss\":" << a.outstandingDmiss
       << ",\"l2miss\":" << a.outstandingL2miss << "},";
    os << "\"tags\":{";
    bool first = true;
    for (int t = 0; t < NumServiceTags; ++t) {
        if (d.core.retiredByTag[t] == 0)
            continue;
        if (!first)
            os << ",";
        first = false;
        os << "\"" << serviceTagName(t)
           << "\":" << d.core.retiredByTag[t];
    }
    os << "},";
    jsonInterference(os, "l1i", d.l1i);
    os << ",";
    jsonInterference(os, "l1d", d.l1d);
    os << ",";
    jsonInterference(os, "l2", d.l2);
    os << ",";
    jsonInterference(os, "dtlb", d.dtlb);
    os << ",";
    jsonInterference(os, "btb", d.btb);
    os << ",\"requests_served\":" << d.requestsServed;
    os << ",\"context_switches\":" << d.contextSwitches;
    os << ",\"faults\":{\"pkt_lost\":" << d.faults.pktLost
       << ",\"pkt_delayed\":" << d.faults.pktDelayed
       << ",\"pkt_reordered\":" << d.faults.pktReordered
       << ",\"nic_intr_drops\":" << d.faults.nicIntrDrops
       << ",\"mce_raised\":" << d.faults.mceRaised
       << ",\"mce_kills\":" << d.faults.mceKills
       << ",\"syn_drops\":" << d.faults.synDrops
       << ",\"backlog_drops\":" << d.faults.backlogDrops
       << ",\"retransmits\":" << d.faults.retransmits
       << ",\"client_aborts\":" << d.faults.clientAborts << "}";
    // The dram object exists only for the banked model, so flat-mode
    // exports stay byte-identical to the pre-banked format.
    if (d.dram.banked) {
        auto vec = [&os](const char *name,
                         const std::vector<std::uint64_t> &v) {
            os << ",\"" << name << "\":[";
            for (std::size_t i = 0; i < v.size(); ++i)
                os << (i ? "," : "") << v[i];
            os << "]";
        };
        os << ",\"dram\":{\"accesses\":" << d.dram.accesses
           << ",\"row_hits\":" << d.dram.rowHits
           << ",\"row_empties\":" << d.dram.rowEmpties
           << ",\"row_conflicts\":" << d.dram.rowConflicts
           << ",\"avg_latency\":" << d.dram.avgLatency()
           << ",\"queue_stall_cycles\":" << d.dram.queueStallCycles
           << ",\"queue_full_stalls\":" << d.dram.queueFullStalls
           << ",\"queue_occupancy\":" << d.dram.queueOccupancy;
        vec("ch_accesses", d.dram.chAccesses);
        vec("ch_busy_cycles", d.dram.chBusyCycles);
        vec("bank_row_hits", d.dram.bankRowHits);
        vec("bank_row_conflicts", d.dram.bankRowConflicts);
        os << "}";
    }
    // Client latency quantiles appear once any request completed
    // (Apache runs); SpecInt output is unchanged.
    if (d.latency.count > 0 || d.retriedLatency.count > 0) {
        auto lat = [&os](const char *name, const LatencySummary &l) {
            os << ",\"" << name << "\":{\"count\":" << l.count
               << ",\"mean\":" << l.mean << ",\"p50\":" << l.p50
               << ",\"p95\":" << l.p95 << ",\"p99\":" << l.p99
               << ",\"p999\":" << l.p999 << "}";
        };
        lat("latency", d.latency);
        lat("retried_latency", d.retriedLatency);
    }
    // Request-tracing aggregates appear only when a tracer was
    // attached, so untraced JSON stays byte-identical.
    if (d.reqtrace.enabled) {
        os << ",\"reqtrace\":{\"tracked\":" << d.reqtrace.tracked
           << ",\"completed_clean\":" << d.reqtrace.completedClean
           << ",\"completed_retried\":" << d.reqtrace.completedRetried
           << ",\"completed_irregular\":"
           << d.reqtrace.completedIrregular
           << ",\"aborted\":" << d.reqtrace.aborted
           << ",\"retransmit_annotations\":"
           << d.reqtrace.retransmitAnnotations
           << ",\"drop_annotations\":" << d.reqtrace.dropAnnotations
           << ",\"stage_cycles\":{";
        for (int i = 0; i < numReqStages; ++i)
            os << (i ? "," : "") << "\"" << reqStageName(i)
               << "\":" << d.reqtrace.stageCycles[i];
        os << "},\"queueing_cycles\":" << d.reqtrace.queueingCycles
           << ",\"service_cycles\":" << d.reqtrace.serviceCycles
           << "}";
    }
    // Overload counters appear only when the open-loop generator or
    // an admission policy was engaged, so default JSON stays
    // byte-identical.
    if (d.overload.enabled) {
        os << ",\"overload\":{\"offered_arrivals\":"
           << d.overload.offeredArrivals
           << ",\"arrival_overflows\":" << d.overload.arrivalOverflows
           << ",\"goodput\":" << d.overload.goodput
           << ",\"client_aborts\":" << d.overload.clientAborts
           << ",\"slow_completions\":" << d.overload.slowCompletions
           << ",\"admit_drop_tail\":" << d.overload.admitDropTail
           << ",\"admit_red_drops\":" << d.overload.admitRedDrops
           << ",\"admit_shed\":" << d.overload.admitShed
           << ",\"mbuf_exhausted\":" << d.overload.mbufExhausted
           << ",\"mbuf_tx_wraps\":" << d.overload.mbufTxWraps << "}";
    }
    // Fidelity counters appear only when the functional engine
    // actually retired instructions or ticked cycles (not on mere
    // no-op switches), so detailed-only JSON stays byte-identical.
    if (d.fidelity.enabled()) {
        os << ",\"fidelity\":{\"functional_instructions\":"
           << d.fidelity.funcInstrs
           << ",\"functional_cycles\":" << d.fidelity.funcCycles
           << ",\"switches\":" << d.fidelity.switches << "}";
    }
    // CMP export: a per-core-indexed array of the private-structure
    // counters plus machine-level SMP aggregates (locks, stealing,
    // shootdowns, coherence). Both appear only for cores > 1, so
    // single-core JSON stays byte-identical.
    if (!d.cores.empty()) {
        os << ",\"cores\":[";
        for (std::size_t c = 0; c < d.cores.size(); ++c) {
            const CoreSlice &s = d.cores[c];
            os << (c ? "," : "") << "{\"cycles\":" << s.core.cycles
               << ",\"instructions\":" << s.core.totalRetired()
               << ",\"ipc\":" << s.core.ipc()
               << ",\"retired\":[" << s.core.retired[0];
            for (int m = 1; m < numModes; ++m)
                os << "," << s.core.retired[m];
            os << "],\"lock_spin_cycles\":" << s.lockSpinCycles << ",";
            jsonInterference(os, "l1i", s.l1i);
            os << ",";
            jsonInterference(os, "l1d", s.l1d);
            os << ",";
            jsonInterference(os, "dtlb", s.dtlb);
            os << "}";
        }
        os << "]";
    }
    if (d.smp.enabled) {
        auto lock = [&os](const char *name, const LockStats &l) {
            os << ",\"" << name
               << "\":{\"acquisitions\":" << l.acquisitions
               << ",\"contended\":" << l.contended
               << ",\"spin_cycles\":" << l.spinCycles
               << ",\"hold_cycles\":" << l.holdCycles << "}";
        };
        os << ",\"smp\":{\"work_steals\":" << d.smp.workSteals
           << ",\"shootdown_ipis\":" << d.smp.shootdownIpis
           << ",\"shootdowns_delivered\":"
           << d.smp.shootdownsDelivered;
        lock("conn_lock", d.smp.connLock);
        lock("mbuf_lock", d.smp.mbufLock);
        lock("sched_lock", d.smp.schedLock);
        os << ",\"coherence\":{\"snoop_probes\":"
           << d.smp.coherence.snoopProbes
           << ",\"invalidations\":" << d.smp.coherence.invalidations
           << ",\"downgrades\":" << d.smp.coherence.downgrades
           << ",\"intervention_writebacks\":"
           << d.smp.coherence.interventionWritebacks
           << ",\"upgrades\":" << d.smp.coherence.upgrades << "}}";
    }
}

void
writeJson(std::ostream &os, const MetricsSnapshot &d)
{
    os << "{";
    writeJsonFields(os, d);
    os << "}";
}

std::string
toJson(const MetricsSnapshot &d)
{
    std::ostringstream os;
    writeJson(os, d);
    return os.str();
}

void
writeCsvRow(std::ostream &os, const std::string &label,
            const MetricsSnapshot &d, bool with_header)
{
    if (with_header) {
        os << "label,cycles,instructions,ipc,user_pct,kernel_pct,"
              "pal_pct,idle_pct,l1i_miss,l1d_miss,l2_miss,itlb_miss,"
              "dtlb_miss,br_mispred,squashed_pct\n";
    }
    const ArchMetrics a = archMetrics(d);
    const ModeShares m = modeShares(d);
    os << label << "," << d.core.cycles << ","
       << d.core.totalRetired() << "," << a.ipc << "," << m.userPct
       << "," << m.kernelPct << "," << m.palPct << "," << m.idlePct
       << "," << a.l1iMissPct << "," << a.l1dMissPct << ","
       << a.l2MissPct << "," << a.itlbMissPct << ","
       << a.dtlbMissPct << "," << a.branchMispredPct << ","
       << a.squashedPct << "\n";
}

} // namespace smtos
