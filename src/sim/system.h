/**
 * @file
 * The full-system simulator facade: physical memory, the memory
 * hierarchy, the SMT core, the kernel image, and the MiniOS model,
 * wired together. This is the role SimOS-Alpha plays in the paper.
 */

#ifndef SMTOS_SIM_SYSTEM_H
#define SMTOS_SIM_SYSTEM_H

#include <memory>

#include "core/pipeline.h"
#include "kernel/kernel.h"
#include "sim/config.h"

namespace smtos {

class Probes;

/** A complete simulated machine. */
class System
{
  public:
    explicit System(const MachineConfig &cfg);

    /**
     * Wire the observability hub into every producer: the pipeline,
     * both TLBs, the caches, and the kernel. Pass nullptr to detach
     * (probe sites revert to a single not-taken branch).
     */
    void attachProbes(Probes *p);

    /** Currently attached observability hub (null when detached). */
    Probes *probes() const { return probes_; }

    /**
     * Attach a fault plan (nullptr detaches). Must run before
     * start(); see Kernel::attachFaults.
     */
    void attachFaults(FaultPlan *plan) { kernel_->attachFaults(plan); }

    /** Bind initial threads; call after workloads are installed. */
    void start() { kernel_->start(); }

    /** Run until @p n more instructions retire. */
    void run(std::uint64_t n) { pipe_->runInstrs(n); }

    /** Run for @p n cycles. */
    void runCycles(Cycle n) { pipe_->runCycles(n); }

    Pipeline &pipeline() { return *pipe_; }
    Kernel &kernel() { return *kernel_; }
    Hierarchy &hierarchy() { return hier_; }
    PhysMem &physMem() { return mem_; }
    const KernelCode &kernelCode() const { return *kc_; }
    const MachineConfig &config() const { return cfg_; }

  private:
    MachineConfig cfg_;
    Probes *probes_ = nullptr;
    PhysMem mem_;
    std::unique_ptr<KernelCode> kc_;
    Hierarchy hier_;
    std::unique_ptr<Pipeline> pipe_;
    std::unique_ptr<Kernel> kernel_;
};

} // namespace smtos

#endif // SMTOS_SIM_SYSTEM_H
