/**
 * @file
 * The full-system simulator facade: physical memory, the memory
 * hierarchy, the SMT core, the kernel image, and the MiniOS model,
 * wired together. This is the role SimOS-Alpha plays in the paper.
 */

#ifndef SMTOS_SIM_SYSTEM_H
#define SMTOS_SIM_SYSTEM_H

#include <memory>
#include <vector>

#include "core/pipeline.h"
#include "kernel/kernel.h"
#include "mem/coherence.h"
#include "sim/config.h"

namespace smtos {

class Probes;

/** A complete simulated machine. */
class System
{
  public:
    explicit System(const MachineConfig &cfg);

    /**
     * Wire the observability hub into every producer: the pipeline,
     * both TLBs, the caches, and the kernel. Pass nullptr to detach
     * (probe sites revert to a single not-taken branch).
     */
    void attachProbes(Probes *p);

    /** Currently attached observability hub (null when detached). */
    Probes *probes() const { return probes_; }

    /**
     * Attach a fault plan (nullptr detaches). Must run before
     * start(); see Kernel::attachFaults.
     */
    void attachFaults(FaultPlan *plan) { kernel_->attachFaults(plan); }

    /** Bind initial threads; call after workloads are installed. */
    void start() { kernel_->start(); }

    /**
     * Run until @p n more instructions retire (chip-wide total on a
     * CMP). On one core this delegates to the pipeline's own loop;
     * on several, the cores step in lockstep one chip cycle at a
     * time, fast-forwarding only when every core is quiescent.
     */
    void run(std::uint64_t n);

    /** Run for @p n cycles. */
    void runCycles(Cycle n);

    Pipeline &pipeline() { return *pipe_; }
    Pipeline &pipeline(int core)
    {
        return *pipes_[static_cast<std::size_t>(core)];
    }
    Kernel &kernel() { return *kernel_; }
    Hierarchy &hierarchy() { return hier_; }
    Hierarchy &hierarchy(int core)
    {
        return core == 0
                   ? hier_
                   : *hiersN_[static_cast<std::size_t>(core - 1)];
    }
    PhysMem &physMem() { return mem_; }
    const KernelCode &kernelCode() const { return *kc_; }
    const MachineConfig &config() const { return cfg_; }

    int numCores() const { return static_cast<int>(pipes_.size()); }
    const std::vector<Pipeline *> &pipes() { return pipes_; }
    /** The chip's snoop hub (null on a single-core machine). */
    CoherenceHub *coherence() { return hub_.get(); }

  private:
    /** Chip-wide retired-instruction count. */
    std::uint64_t chipRetired() const;
    /** Skip to the next chip event if every core is quiescent. */
    void chipFastForward(Cycle limit);

    MachineConfig cfg_;
    Probes *probes_ = nullptr;
    PhysMem mem_;
    std::unique_ptr<KernelCode> kc_;
    Hierarchy hier_;
    std::unique_ptr<Pipeline> pipe_;
    std::unique_ptr<CoherenceHub> hub_;
    std::vector<std::unique_ptr<Hierarchy>> hiersN_;
    std::vector<std::unique_ptr<Pipeline>> pipesN_;
    /** All cores in order; pipes_[0] == pipe_.get(). */
    std::vector<Pipeline *> pipes_;
    /** Chip-wide uop sequence counter shared by every core's
     *  cosim-observation stream (matches Pipeline's initial seq). */
    std::uint64_t chipSeq_ = 1;
    std::unique_ptr<Kernel> kernel_;
};

} // namespace smtos

#endif // SMTOS_SIM_SYSTEM_H
