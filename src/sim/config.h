/**
 * @file
 * Ready-made system configurations: the Table-1 SMT and the
 * resource-equivalent out-of-order superscalar baseline.
 */

#ifndef SMTOS_SIM_CONFIG_H
#define SMTOS_SIM_CONFIG_H

#include <cstdint>

#include "core/context.h"
#include "kernel/kernel.h"
#include "mem/hierarchy.h"

namespace smtos {

/** Everything needed to instantiate a System. */
struct MachineConfig
{
    CoreParams core;
    HierarchyParams mem;
    Kernel::Params kernel;
    /** CMP width: number of SMT cores sharing the L2 (1 = the
     *  paper's single-core machine, timing-identical to before the
     *  CMP existed). */
    int cores = 1;
};

/** The paper's 8-context SMT (Table 1). */
MachineConfig smtConfig();

/**
 * The out-of-order superscalar baseline: identical resources, one
 * hardware context, two fewer pipeline stages.
 */
MachineConfig superscalarConfig();

} // namespace smtos

#endif // SMTOS_SIM_CONFIG_H
