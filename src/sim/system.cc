#include "sim/system.h"

namespace smtos {

System::System(const SystemConfig &cfg)
    : cfg_(cfg),
      mem_(128ull * 1024 * 1024, reservedPhysBytes),
      kc_(buildKernelImage(cfg.kernel.seed ^ 0xfeedull)),
      hier_(cfg.mem)
{
    pipe_ = std::make_unique<Pipeline>(cfg.core, hier_, &kc_->image);
    kernel_ = std::make_unique<Kernel>(cfg.kernel, *pipe_, mem_, *kc_);
    if (cfg.kernel.appOnly)
        pipe_->setAppOnlyTlb(true);
}

} // namespace smtos
