#include "sim/system.h"

namespace smtos {

System::System(const MachineConfig &cfg)
    : cfg_(cfg),
      mem_(128ull * 1024 * 1024, reservedPhysBytes),
      kc_(buildKernelImage(cfg.kernel.seed ^ 0xfeedull)),
      hier_(cfg.mem)
{
    pipe_ = std::make_unique<Pipeline>(cfg.core, hier_, &kc_->image);
    kernel_ = std::make_unique<Kernel>(cfg.kernel, *pipe_, mem_, *kc_);
    if (cfg.kernel.appOnly)
        pipe_->setAppOnlyTlb(true);
}

void
System::attachProbes(Probes *p)
{
    probes_ = p;
    pipe_->setProbes(p);
    pipe_->itlb().setProbes(p);
    pipe_->dtlb().setProbes(p);
    hier_.l1i().setProbes(p);
    hier_.l1d().setProbes(p);
    hier_.l2().setProbes(p);
    hier_.memctrl().setProbes(p);
    kernel_->setProbes(p);
}

} // namespace smtos
