#include "sim/system.h"

#include <algorithm>

#include "common/logging.h"

namespace smtos {

System::System(const MachineConfig &cfg)
    : cfg_(cfg),
      mem_(128ull * 1024 * 1024, reservedPhysBytes),
      kc_(buildKernelImage(cfg.kernel.seed ^ 0xfeedull)),
      hier_(cfg.mem)
{
    pipe_ = std::make_unique<Pipeline>(cfg.core, hier_, &kc_->image);
    pipes_.push_back(pipe_.get());
    if (cfg.cores > 1) {
        hub_ = std::make_unique<CoherenceHub>();
        hier_.setCoherence(hub_.get(), 0, nullptr);
        hub_->attach(&hier_);
        for (int c = 1; c < cfg.cores; ++c) {
            hiersN_.push_back(std::make_unique<Hierarchy>(cfg.mem));
            Hierarchy *h = hiersN_.back().get();
            h->setCoherence(hub_.get(), c, &hier_);
            hub_->attach(h);
            pipesN_.push_back(
                std::make_unique<Pipeline>(cfg.core, *h, &kc_->image));
            pipes_.push_back(pipesN_.back().get());
        }
        // Every core draws uop sequence numbers from one chip-wide
        // counter so cosim's per-thread ordering survives migration.
        for (int c = 0; c < cfg.cores; ++c) {
            pipes_[static_cast<std::size_t>(c)]->setCoreId(
                c, c * cfg.core.numContexts);
            pipes_[static_cast<std::size_t>(c)]->setSharedSeq(
                &chipSeq_);
        }
    }
    kernel_ = std::make_unique<Kernel>(cfg.kernel, *pipe_, mem_, *kc_);
    if (cfg.cores > 1)
        kernel_->attachPipes(pipes_);
    if (cfg.kernel.appOnly)
        for (Pipeline *p : pipes_)
            p->setAppOnlyTlb(true);
}

void
System::attachProbes(Probes *p)
{
    probes_ = p;
    for (std::size_t c = 0; c < pipes_.size(); ++c) {
        Pipeline *pipe = pipes_[c];
        pipe->setProbes(p);
        pipe->itlb().setProbes(p);
        pipe->dtlb().setProbes(p);
        Hierarchy &h = hierarchy(static_cast<int>(c));
        h.l1i().setProbes(p);
        h.l1d().setProbes(p);
        if (c == 0) {
            // Shared-level structures live in core 0's hierarchy.
            h.l2().setProbes(p);
            h.memctrl().setProbes(p);
        }
    }
    kernel_->setProbes(p);
}

std::uint64_t
System::chipRetired() const
{
    std::uint64_t total = 0;
    for (const Pipeline *p : pipes_)
        total += p->stats().totalRetired();
    return total;
}

void
System::chipFastForward(Cycle limit)
{
    for (Pipeline *p : pipes_)
        if (!p->fastForwardEnabled() || !p->quiescentNow())
            return;
    Cycle h = ~Cycle{0};
    for (Pipeline *p : pipes_)
        h = std::min(h, p->eventHorizon());
    if (h > limit)
        h = limit;
    if (h <= pipe_->now() + 1)
        return;
    const Cycle k = h - pipe_->now() - 1;
    for (Pipeline *p : pipes_)
        p->skipIdle(k);
}

void
System::run(std::uint64_t n)
{
    if (pipes_.size() == 1) {
        pipe_->runInstrs(n);
        return;
    }
    const std::uint64_t target = chipRetired() + n;
    std::uint64_t last = chipRetired();
    Cycle last_progress = pipe_->now();
    while (chipRetired() < target) {
        // Clamp at the no-progress panic boundary so a wedged chip
        // aborts at the same cycle as the ticked loop.
        chipFastForward(last_progress + 200001);
        for (Pipeline *p : pipes_)
            p->cycle();
        if (chipRetired() != last) {
            last = chipRetired();
            last_progress = pipe_->now();
        } else if (pipe_->now() - last_progress > 200000) {
            smtos_panic("chip made no progress for 200k cycles "
                        "(cycle %llu)",
                        static_cast<unsigned long long>(pipe_->now()));
        }
    }
}

void
System::runCycles(Cycle n)
{
    if (pipes_.size() == 1) {
        pipe_->runCycles(n);
        return;
    }
    const Cycle end = pipe_->now() + n;
    while (pipe_->now() < end) {
        chipFastForward(end);
        for (Pipeline *p : pipes_)
            p->cycle();
    }
}

} // namespace smtos
