/**
 * @file
 * Metrics: snapshots and derived statistics matching every table and
 * figure in the paper's evaluation. Benches capture a snapshot, run a
 * measurement interval, capture again, and compute on the delta.
 */

#ifndef SMTOS_SIM_METRICS_H
#define SMTOS_SIM_METRICS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/context.h"
#include "fault/fault.h"
#include "kernel/admission.h"
#include "kernel/tags.h"
#include "mem/coherence.h"
#include "mem/memctrl.h"
#include "mem/missclass.h"
#include "obs/reqtrace.h"
#include "sim/system.h"

namespace smtos {

class Histogram;

/**
 * Point-in-time histogram summary (client latency quantiles). The
 * quantiles are positional, not counters: delta() subtracts the
 * counts but keeps the later capture's quantiles, which over a
 * measurement interval approximate the interval's own tail well when
 * the interval dominates the sample count.
 */
struct LatencySummary
{
    std::uint64_t count = 0;
    double mean = 0;
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;
    double p999 = 0;

    static LatencySummary of(const Histogram &h);
};

/** Switchable-fidelity counters (DESIGN.md §15). */
struct FidelityStats
{
    std::uint64_t funcInstrs = 0; ///< instructions retired functionally
    std::uint64_t funcCycles = 0; ///< cycles ticked functionally
    std::uint64_t switches = 0;   ///< fidelity switches (both ways)

    bool enabled() const { return funcInstrs != 0 || funcCycles != 0; }
};

/** Kernel lock counters for one named lock (DESIGN.md §16). */
struct LockStats
{
    std::uint64_t acquisitions = 0;
    std::uint64_t contended = 0;  ///< acquisitions that spun
    std::uint64_t spinCycles = 0; ///< cycles burned waiting
    std::uint64_t holdCycles = 0; ///< cycles the lock was held

    LockStats delta(const LockStats &e) const;
};

/** SMP machine-level counters (enabled marks cores > 1). */
struct SmpStats
{
    int enabled = 0;
    LockStats connLock;
    LockStats mbufLock;
    LockStats schedLock; ///< summed over the per-core run-queue locks
    std::uint64_t workSteals = 0;
    std::uint64_t shootdownIpis = 0;
    std::uint64_t shootdownsDelivered = 0;
    CoherenceStats coherence;

    SmpStats delta(const SmpStats &e) const;
};

/** One core's slice of a CMP capture (private structures only; the
 *  shared L2/DRAM stay machine-level). */
struct CoreSlice
{
    CoreStats core;
    InterferenceStats btb, l1i, l1d, itlb, dtlb;
    std::uint64_t btbWrongTarget = 0;
    /** Kernel lock-spin cycles burned by contexts on this core. */
    std::uint64_t lockSpinCycles = 0;
};

/**
 * Point-in-time copy of every counter the paper's tables need.
 *
 * On a CMP (cores > 1) the top-level core/btb/L1/TLB fields are the
 * machine-level aggregates (counters summed across cores; cycles is
 * the chip cycle, not the sum) and @c cores holds the per-core
 * slices. At cores = 1 the capture is exactly the historical
 * single-core one and @c cores stays empty.
 */
struct MetricsSnapshot
{
    CoreStats core;
    InterferenceStats btb, l1i, l1d, l2, itlb, dtlb;
    std::uint64_t btbWrongTarget = 0;
    double imissIntegral = 0.0;
    double dmissIntegral = 0.0;
    double l2missIntegral = 0.0;
    std::map<std::string, std::uint64_t> mmEntries;
    std::map<std::string, std::uint64_t> syscalls;
    std::uint64_t requestsServed = 0;
    std::uint64_t contextSwitches = 0;
    FaultCounters faults;
    DramStats dram;
    /** Client-observed request latency (Apache runs; else empty). */
    LatencySummary latency;
    LatencySummary retriedLatency;
    /** Request-tracing aggregates (reqtrace.enabled marks a tracer
     *  was attached when captured). */
    ReqTraceStats reqtrace;
    /** Overload counters (overload.enabled marks the open-loop
     *  generator or an admission policy was engaged). */
    OverloadStats overload;
    /** Functional-fidelity counters (enabled() marks the functional
     *  engine actually ran; exports stay byte-identical otherwise). */
    FidelityStats fidelity;
    /** Per-core slices (cores > 1 only; empty on the single core). */
    std::vector<CoreSlice> cores;
    /** SMP counters (smp.enabled marks a CMP capture). */
    SmpStats smp;

    static MetricsSnapshot capture(System &sys);

    /** Counter-wise difference (this minus @p earlier). */
    MetricsSnapshot delta(const MetricsSnapshot &earlier) const;
};

/** Execution-cycle shares by mode (Figures 1 and 5 series). */
struct ModeShares
{
    double userPct = 0;
    double kernelPct = 0; ///< kernel proper (excluding PAL)
    double palPct = 0;
    double idlePct = 0;
};

ModeShares modeShares(const MetricsSnapshot &d);

/** Kernel share attributed to each service tag, as % of all
 *  retired instructions (Figures 2, 4, 6, 7). */
double tagSharePct(const MetricsSnapshot &d, int tag);

/** Kernel share by Figure-2/6 group. */
double groupSharePct(const MetricsSnapshot &d, ServiceGroup g);

/** One column of Tables 4 and 6. */
struct ArchMetrics
{
    double ipc = 0;
    double fetchableContexts = 0;
    double branchMispredPct = 0;   ///< conditional direction mispredicts
    double squashedPct = 0;        ///< % of fetched instructions
    double btbMissPct = 0;
    double l1iMissPct = 0;
    double l1dMissPct = 0;
    double l2MissPct = 0;
    double itlbMissPct = 0;
    double dtlbMissPct = 0;
    double zeroFetchPct = 0;
    double zeroIssuePct = 0;
    double maxIssuePct = 0;
    double outstandingImiss = 0;
    double outstandingDmiss = 0;
    double outstandingL2miss = 0;
};

ArchMetrics archMetrics(const MetricsSnapshot &d);

/** Mix-table row values for one privilege class (Tables 2 and 5). */
struct MixRow
{
    double loadPct = 0, loadPhysPct = 0;
    double storePct = 0, storePhysPct = 0;
    double branchPct = 0;
    double condPct = 0, condTakenPct = 0;
    double uncondPct = 0;
    double indirectPct = 0;
    double palPct = 0;
    double otherIntPct = 0;
    double fpPct = 0;
};

/** @param kernel_class false = user, true = kernel+PAL */
MixRow mixRow(const MetricsSnapshot &d, bool kernel_class);

/** Conflict-cause percentages for one structure (Tables 3 and 7):
 *  cause[cls][MissCause] as % of all misses; columns sum to 100. */
struct MissBreakdown
{
    double totalMissRate[2] = {0, 0}; ///< per-class miss rate %
    double causePct[2][numMissCauses] = {{0}, {0}};
};

MissBreakdown missBreakdown(const InterferenceStats &s);

/** Avoided-miss percentages (Table 8): [accessor][filler] as % of all
 *  misses in the structure. */
struct SharingBreakdown
{
    double avoidedPct[2][2] = {{0, 0}, {0, 0}};
};

SharingBreakdown sharingBreakdown(const InterferenceStats &s);

} // namespace smtos

#endif // SMTOS_SIM_METRICS_H
