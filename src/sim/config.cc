#include "sim/config.h"

namespace smtos {

MachineConfig
smtConfig()
{
    MachineConfig cfg;
    // CoreParams and HierarchyParams default to Table 1 already;
    // restated here so the preset is explicit and greppable.
    cfg.core.numContexts = 8;
    cfg.core.fetchWidth = 8;
    cfg.core.fetchContexts = 2;
    cfg.core.pipelineStages = 9;
    cfg.core.intUnits = 6;
    cfg.core.memUnits = 4;
    cfg.core.fpUnits = 4;
    cfg.core.intQueue = 32;
    cfg.core.fpQueue = 32;
    cfg.core.intRenameRegs = 100;
    cfg.core.fpRenameRegs = 100;
    cfg.core.retireWidth = 12;
    cfg.core.itlbEntries = 128;
    cfg.core.dtlbEntries = 128;
    return cfg;
}

MachineConfig
superscalarConfig()
{
    MachineConfig cfg = smtConfig();
    cfg.core.numContexts = 1;
    cfg.core.fetchContexts = 1;
    cfg.core.pipelineStages = 7; // smaller register file
    return cfg;
}

} // namespace smtos
