#!/usr/bin/env python3
"""Simulation-speed gate and trajectory recorder for bench_simspeed.

Compares two google-benchmark JSON outputs (--benchmark_format=json)
on items_per_second, fails if any shared benchmark regressed more
than the tolerance, and reports improvements so deliberate host-side
optimizations are visible in the log, not just regressions. Used by
CI to keep the probes-off configuration within noise of the recorded
baseline (the observability layer must cost one predictable branch
per probe site when disabled) and to maintain BENCH_simspeed.json, a
trajectory artifact recording how the simulation rate moved; the
cached baseline is refreshed on main after a passing gate. Locally:

    build/bench/bench_simspeed --benchmark_filter=BM_SimRate \
        --benchmark_format=json > current.json
    python3 tools/simspeed_gate.py tools/simspeed_baseline.json \
        current.json --trajectory BENCH_simspeed.json

Only stdlib; exit 0 = pass, 1 = regression, 2 = usage/parse error.
"""

import argparse
import json
import os
import shutil
import sys


def load_rates(path, name_filter):
    """Map benchmark name -> items_per_second from a benchmark JSON."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    rates = {}
    for b in doc.get("benchmarks", []):
        name = b.get("name", "")
        # Skip aggregate rows (mean/median/stddev repetitions).
        if b.get("run_type") == "aggregate":
            continue
        if name_filter not in name:
            continue
        ips = b.get("items_per_second")
        if ips:
            rates[name] = float(ips)
    if not rates:
        sys.exit(f"error: no '{name_filter}' benchmarks with "
                 f"items_per_second in {path}")
    return rates


def bench_mode(name):
    """Execution fidelity a BM_SimRate benchmark ran at, from its
    name: the trajectory must never present a functional-mode rate as
    comparable to a detailed-mode rate."""
    if "Functional" in name:
        return "functional"
    if "Sampled" in name:
        return "sampled"
    return "detailed"


def append_trajectory(path, label, base, cur, shared):
    """Append one comparison entry to the trajectory artifact.

    The file holds {"entries": [...]}, oldest first; each entry maps
    benchmark name -> {baseline, current, speedup}, every number
    tagged with its unit (simulated instr/s for rates, ratio for the
    speedup) and the fidelity the benchmark ran at, so entries from
    different modes cannot be misread as one series. CI uploads it so
    the simulation-rate history survives across runs.
    """
    doc = {"entries": []}
    try:
        with open(path, "r", encoding="utf-8") as f:
            loaded = json.load(f)
        if isinstance(loaded.get("entries"), list):
            doc = loaded
    except (OSError, ValueError):
        pass
    entry = {"label": label, "benchmarks": {}}
    for name in shared:
        entry["benchmarks"][name] = {
            "mode": bench_mode(name),
            "baseline": {"value": round(base[name], 1),
                         "unit": "instr/s"},
            "current": {"value": round(cur[name], 1),
                        "unit": "instr/s"},
            "speedup": {"value": round(cur[name] / base[name], 4),
                        "unit": "ratio"},
        }
    doc["entries"].append(entry)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"trajectory: appended entry '{label}' to {path} "
          f"({len(doc['entries'])} total)")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="recorded baseline benchmark JSON")
    ap.add_argument("current", help="freshly measured benchmark JSON")
    ap.add_argument("--tolerance", type=float, default=None,
                    help="max allowed fractional regression "
                         "(default 0.05; 0.01 with --overhead)")
    ap.add_argument("--overhead", action="store_true",
                    help="gate a feature's disabled-path overhead: "
                         "both arguments are fresh measurements of "
                         "the same build (feature off vs on), so a "
                         "missing 'baseline' is an error rather than "
                         "seeded, and the tolerance tightens to 1%%")
    ap.add_argument("--filter", default="BM_SimRate",
                    help="substring selecting gated benchmarks "
                         "(default BM_SimRate)")
    ap.add_argument("--trajectory", metavar="PATH",
                    help="append the comparison to this trajectory "
                         "JSON artifact (e.g. BENCH_simspeed.json)")
    ap.add_argument("--label", default="gate",
                    help="label for the trajectory entry")
    ap.add_argument("--dry-run", action="store_true",
                    help="report only: never record a baseline or "
                         "touch the trajectory artifact")
    args = ap.parse_args()
    if args.tolerance is None:
        args.tolerance = 0.01 if args.overhead else 0.05

    if args.overhead and not os.path.exists(args.baseline):
        sys.exit(f"error: --overhead compares two fresh measurements; "
                 f"{args.baseline} must exist")
    if not os.path.exists(args.baseline):
        # First run on a fresh checkout or cache miss: there is
        # nothing to gate against, so seed the baseline from the
        # current measurement instead of failing.
        load_rates(args.current, args.filter)  # validate before seeding
        if args.dry_run:
            print(f"no baseline at {args.baseline}: would record "
                  f"current measurement (dry run, nothing written)")
        else:
            shutil.copyfile(args.current, args.baseline)
            print(f"no baseline at {args.baseline}: recording current "
                  f"measurement as the baseline")
        return 0

    base = load_rates(args.baseline, args.filter)
    cur = load_rates(args.current, args.filter)
    shared = sorted(set(base) & set(cur))
    if not shared:
        sys.exit("error: baseline and current share no benchmarks")

    failed = []
    improved = []
    print(f"{'benchmark':<40} {'baseline':>12} {'current':>12} "
          f"{'delta':>8}")
    for name in shared:
        b, c = base[name], cur[name]
        delta = (c - b) / b
        mark = ""
        if delta < -args.tolerance:
            failed.append((name, delta))
            mark = "  << FAIL"
        elif delta > args.tolerance:
            improved.append((name, delta))
            mark = "  >> improved"
        print(f"{name:<40} {b:>12.0f} {c:>12.0f} "
              f"{delta:>+7.1%}{mark}")

    if args.trajectory:
        if args.dry_run:
            print(f"dry run: not appending to {args.trajectory}")
        else:
            append_trajectory(args.trajectory, args.label, base, cur,
                              shared)

    if improved:
        best = max(d for _, d in improved)
        print(f"\n{len(improved)} benchmark(s) improved beyond "
              f"{args.tolerance:.0%} (best {best:+.1%}) — refresh the "
              f"recorded baseline so the gain is locked in")
    what = "overhead" if args.overhead else "regression"
    if failed:
        worst = min(d for _, d in failed)
        print(f"\nFAIL: {len(failed)} benchmark(s) exceed the "
              f"{args.tolerance:.0%} {what} budget "
              f"(worst {worst:+.1%})")
        return 1
    print(f"\nOK: all {len(shared)} benchmarks within "
          f"{args.tolerance:.0%} {what} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
