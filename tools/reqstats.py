#!/usr/bin/env python3
"""Per-stage latency quantiles from a request-span JSONL file.

The request tracer (DESIGN.md §13, SMTOS_REQTRACE_FILE) writes one
JSON object per finished span. Clean spans — every boundary stamped,
no retransmit — carry a "stages" object with the six per-stage cycle
counts and an "e2e" total; retried and aborted spans carry only the
boundary vector. This tool aggregates a file (or stdin) into a
p50/p99/p999 table per stage, plus the queueing-vs-service split and
the span-disposition counts:

    python3 tools/reqstats.py spans.jsonl
    python3 tools/reqstats.py < spans.jsonl

Only stdlib; exit 0 = ok, 2 = usage/parse error.
"""

import argparse
import json
import math
import sys

# Stage order and queueing/service classification mirror
# src/obs/reqtrace.h; keep the two in sync.
STAGES = [
    ("nic_wait", True),
    ("netstack", False),
    ("accept_wait", True),
    ("sched_wait", True),
    ("service", False),
    ("transmit", False),
]


def quantile(sorted_vals, q):
    """Nearest-rank quantile of an ascending list (empty -> 0)."""
    if not sorted_vals:
        return 0
    rank = max(1, math.ceil(q * len(sorted_vals)))
    return sorted_vals[min(len(sorted_vals), rank) - 1]


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("spans", nargs="?", default="-",
                    help="span JSONL file (default: stdin)")
    args = ap.parse_args()

    try:
        stream = (sys.stdin if args.spans == "-"
                  else open(args.spans, "r", encoding="utf-8"))
    except OSError as e:
        sys.exit(f"error: cannot open {args.spans}: {e}")

    per_stage = {name: [] for name, _ in STAGES}
    e2e = []
    clean = retried = aborted = other = 0
    queueing = service = 0
    with stream:
        for lineno, line in enumerate(stream, 1):
            line = line.strip()
            if not line:
                continue
            try:
                span = json.loads(line)
            except ValueError as e:
                sys.exit(f"error: line {lineno}: {e}")
            if span.get("aborted"):
                aborted += 1
                continue
            if span.get("retried"):
                retried += 1
                continue
            if not span.get("clean"):
                other += 1
                continue
            clean += 1
            stages = span.get("stages", {})
            for name, is_queueing in STAGES:
                cycles = stages.get(name, 0)
                per_stage[name].append(cycles)
                if is_queueing:
                    queueing += cycles
                else:
                    service += cycles
            e2e.append(span.get("e2e", 0))

    total = clean + retried + aborted + other
    print(f"spans: {total}  clean {clean}  retried {retried}  "
          f"aborted {aborted}  irregular {other}")
    # Goodput = completions a client actually consumed (clean +
    # retried); the give-up fraction is the overload-collapse signal
    # (see DESIGN.md §14 and bench/fig_overload_knee).
    goodput = clean + retried
    if total:
        print(f"goodput: {goodput} "
              f"({100.0 * goodput / total:.1f}% of spans)   "
              f"given up: {aborted} "
              f"({100.0 * aborted / total:.1f}%)")
    if not clean:
        print("no clean spans: nothing to aggregate")
        return 0

    print(f"\n{'stage':<14} {'class':<9} {'p50':>12} {'p99':>12} "
          f"{'p999':>12} {'mean':>12}")
    rows = [(name, "queueing" if q else "service",
             sorted(per_stage[name])) for name, q in STAGES]
    rows.append(("e2e", "", sorted(e2e)))
    for name, klass, vals in rows:
        mean = sum(vals) / len(vals)
        print(f"{name:<14} {klass:<9} {quantile(vals, 0.50):>12} "
              f"{quantile(vals, 0.99):>12} {quantile(vals, 0.999):>12} "
              f"{mean:>12.0f}")

    attributed = queueing + service
    if attributed:
        print(f"\nqueueing {queueing} cycles "
              f"({100.0 * queueing / attributed:.1f}%)   "
              f"service {service} cycles "
              f"({100.0 * service / attributed:.1f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
