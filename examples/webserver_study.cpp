/**
 * @file
 * Web-server study: where the Apache-like server spends its time
 * (Section 3.2 of the paper), and what SMT buys over a superscalar.
 */

#include <cstdio>

#include "common/table.h"
#include "harness/experiment.h"
#include "kernel/tags.h"

using namespace smtos;

int
main()
{
    std::printf("smtos web-server study: Apache under SPECWeb-like "
                "load\n");

    RunSpec smt;
    smt.workload = RunSpec::Workload::Apache;
    smt.startupInstrs = 1'500'000;
    smt.measureInstrs = 2'000'000;
    RunSpec ss = smt;
    ss.smt = false;
    ss.measureInstrs = 1'000'000;

    RunResult r_smt = runExperiment(smt);
    RunResult r_ss = runExperiment(ss);

    const ModeShares m = modeShares(r_smt.steady);
    TextTable t("where Apache spends its cycles (SMT)");
    t.header({"component", "% of all cycles"});
    t.row({"user code", TextTable::num(m.userPct, 1)});
    for (ServiceGroup g :
         {ServiceGroup::Syscall, ServiceGroup::Interrupt,
          ServiceGroup::NetIsr, ServiceGroup::TlbHandling,
          ServiceGroup::Sched, ServiceGroup::Idle}) {
        t.row({serviceGroupName(g),
               TextTable::num(groupSharePct(r_smt.steady, g), 1)});
    }
    t.print();

    const ArchMetrics a = archMetrics(r_smt.steady);
    const ArchMetrics b = archMetrics(r_ss.steady);
    TextTable c("SMT vs superscalar");
    c.header({"metric", "SMT", "superscalar"});
    c.row({"IPC", TextTable::num(a.ipc, 2), TextTable::num(b.ipc, 2)});
    c.row({"L1I miss %", TextTable::num(a.l1iMissPct, 2),
           TextTable::num(b.l1iMissPct, 2)});
    c.row({"L1D miss %", TextTable::num(a.l1dMissPct, 2),
           TextTable::num(b.l1dMissPct, 2)});
    c.row({"0-fetch cycles %", TextTable::num(a.zeroFetchPct, 1),
           TextTable::num(b.zeroFetchPct, 1)});
    c.row({"requests served",
           TextTable::num(r_smt.steady.requestsServed),
           TextTable::num(r_ss.steady.requestsServed)});
    c.print();

    std::printf("\nSMT throughput gain over the superscalar: %.2fx\n",
                a.ipc / b.ipc);
    return 0;
}
