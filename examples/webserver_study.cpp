/**
 * @file
 * Web-server study: where the Apache-like server spends its time
 * (Section 3.2 of the paper), and what SMT buys over a superscalar.
 *
 * Snapshot workflow (SMT leg):
 *   webserver_study --save-snapshot web.snap   # startup, save, measure
 *   webserver_study --from-snapshot web.snap   # resume, measure only
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/table.h"
#include "harness/env.h"
#include "harness/session.h"
#include "kernel/tags.h"

using namespace smtos;

namespace {

bool
writeFile(const std::string &path, const std::vector<std::uint8_t> &b)
{
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char *>(b.data()),
              static_cast<std::streamsize>(b.size()));
    return static_cast<bool>(out);
}

std::vector<std::uint8_t>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                     std::istreambuf_iterator<char>());
}

} // namespace

int
main(int argc, char **argv)
{
    EnvOverrides::fromEnvironment().install();

    std::string savePath, fromPath;
    for (int i = 1; i + 1 < argc; i += 2) {
        if (!std::strcmp(argv[i], "--save-snapshot"))
            savePath = argv[i + 1];
        else if (!std::strcmp(argv[i], "--from-snapshot"))
            fromPath = argv[i + 1];
    }

    std::printf("smtos web-server study: Apache under SPECWeb-like "
                "load\n");

    Session::Config smt;
    smt.workload.kind = WorkloadConfig::Kind::Apache;
    smt.phases.startupInstrs = 1'500'000;
    smt.phases.measureInstrs = 2'000'000;
    Session::Config ss = smt;
    ss.system.smt = false;
    ss.phases.measureInstrs = 1'000'000;

    RunResult r_smt;
    if (!fromPath.empty()) {
        Session::ResumeOptions opts;
        opts.phases = smt.phases;
        std::string err;
        auto s = Session::resume(readFile(fromPath), opts, &err);
        if (!s) {
            std::fprintf(stderr, "cannot resume from %s: %s\n",
                         fromPath.c_str(), err.c_str());
            return 1;
        }
        r_smt = s->runMeasurement();
    } else {
        Session s(smt);
        s.runStartup();
        if (!savePath.empty()) {
            if (!writeFile(savePath, s.snapshot())) {
                std::fprintf(stderr, "cannot write %s\n",
                             savePath.c_str());
                return 1;
            }
            std::printf("post-startup snapshot saved to %s\n",
                        savePath.c_str());
        }
        r_smt = s.runMeasurement();
    }
    RunResult r_ss = Session(ss).run();

    const ModeShares m = modeShares(r_smt.steady);
    TextTable t("where Apache spends its cycles (SMT)");
    t.header({"component", "% of all cycles"});
    t.row({"user code", TextTable::num(m.userPct, 1)});
    for (ServiceGroup g :
         {ServiceGroup::Syscall, ServiceGroup::Interrupt,
          ServiceGroup::NetIsr, ServiceGroup::TlbHandling,
          ServiceGroup::Sched, ServiceGroup::Idle}) {
        t.row({serviceGroupName(g),
               TextTable::num(groupSharePct(r_smt.steady, g), 1)});
    }
    t.print();

    const ArchMetrics a = archMetrics(r_smt.steady);
    const ArchMetrics b = archMetrics(r_ss.steady);
    TextTable c("SMT vs superscalar");
    c.header({"metric", "SMT", "superscalar"});
    c.row({"IPC", TextTable::num(a.ipc, 2), TextTable::num(b.ipc, 2)});
    c.row({"L1I miss %", TextTable::num(a.l1iMissPct, 2),
           TextTable::num(b.l1iMissPct, 2)});
    c.row({"L1D miss %", TextTable::num(a.l1dMissPct, 2),
           TextTable::num(b.l1dMissPct, 2)});
    c.row({"0-fetch cycles %", TextTable::num(a.zeroFetchPct, 1),
           TextTable::num(b.zeroFetchPct, 1)});
    c.row({"requests served",
           TextTable::num(r_smt.steady.requestsServed),
           TextTable::num(r_ss.steady.requestsServed)});
    c.print();

    std::printf("\nSMT throughput gain over the superscalar: %.2fx\n",
                a.ipc / b.ipc);
    return 0;
}
