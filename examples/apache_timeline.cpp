/**
 * @file
 * Observability demo and CI artifact generator: run a short Apache
 * experiment with every probe sink enabled and write
 *
 *   <outdir>/report.txt      cycle-attribution profiler report
 *   <outdir>/interval.jsonl  interval time-series (JSON lines)
 *   <outdir>/interval.csv    interval time-series (CSV)
 *   <outdir>/trace.json      Perfetto/Chrome trace (ui.perfetto.dev)
 *   <outdir>/spans.jsonl     request spans (tools/reqstats.py)
 *
 * Usage: apache_timeline [outdir]   (default: obs-artifacts)
 */

#include <cstdio>
#include <filesystem>
#include <string>

#include "harness/env.h"
#include "harness/session.h"
#include "obs/profiler.h"
#include "obs/reqtrace.h"
#include "obs/session.h"

using namespace smtos;

int
main(int argc, char **argv)
{
    EnvOverrides::fromEnvironment().install();

    const std::string outdir = argc > 1 ? argv[1] : "obs-artifacts";
    std::filesystem::create_directories(outdir);

    ObsConfig oc;
    oc.profile = true;
    oc.reportPath = outdir + "/report.txt";
    oc.intervalCycles = 20'000;
    oc.intervalJsonlPath = outdir + "/interval.jsonl";
    oc.intervalCsvPath = outdir + "/interval.csv";
    oc.timelinePath = outdir + "/trace.json";
    oc.reqtrace = true;
    oc.reqtraceFilePath = outdir + "/spans.jsonl";
    ObsSession obs(oc);

    Session::Config cfg;
    cfg.workload.kind = WorkloadConfig::Kind::Apache;
    // Long enough that requests issued under tracing also complete
    // under tracing (end-to-end latency at full load is north of a
    // million cycles), so spans.jsonl has finished spans to show.
    cfg.phases.startupInstrs = 300'000;
    cfg.phases.measureInstrs = 6'000'000;
    cfg.obs = &obs;

    std::printf("smtos observability demo: short Apache run\n");
    RunResult r = Session(cfg).run();

    const CycleProfiler &p = *obs.profiler();
    const std::uint64_t total = p.fetchSlotsTotal();
    const std::uint64_t accounted =
        p.fetchSlotsUsed() + p.fetchSlotsLost();
    std::printf("cycles: %llu  instructions: %llu  requests: %llu\n",
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(
                    r.steady.core.totalRetired()),
                static_cast<unsigned long long>(r.requestsServed));
    std::printf("fetch slots: %llu total, %llu accounted (%s)\n",
                static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(accounted),
                total == accounted ? "exact" : "MISMATCH");
    const ReqTraceStats &rt = obs.reqtrace()->stats();
    std::printf("request spans: %llu tracked, %llu clean, "
                "%llu retried, %llu in flight\n",
                static_cast<unsigned long long>(rt.tracked),
                static_cast<unsigned long long>(rt.completedClean),
                static_cast<unsigned long long>(rt.completedRetried),
                static_cast<unsigned long long>(
                    obs.reqtrace()->inflight()));
    std::printf("artifacts in %s/: report.txt interval.jsonl "
                "interval.csv trace.json spans.jsonl\n",
                outdir.c_str());
    return total == accounted ? 0 : 1;
}
