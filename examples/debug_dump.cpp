/**
 * @file
 * Inspection tool: run a workload and dump the full diagnostic
 * profile (service-tag shares, MM entries, syscall counts, TLB and
 * cache interference breakdowns, fetch-stall mix).
 *
 * Usage: debug_dump [s|a] [startup-instrs|1=auto] [measure-instrs]
 *                   [m|s(uperscalar)] [-|a(pp-only)]
 */
#include <cstdio>
#include <cstdlib>

#include "harness/env.h"
#include "harness/session.h"
#include "kernel/tags.h"

using namespace smtos;

int
main(int argc, char **argv)
{
    EnvOverrides::fromEnvironment().install();

    Session::Config spec;
    spec.workload.kind = (argc > 1 && argv[1][0] == 'a')
                             ? WorkloadConfig::Kind::Apache
                             : WorkloadConfig::Kind::SpecInt;
    spec.phases.startupInstrs =
        argc > 2 ? std::atoll(argv[2]) : 500'000;
    if (spec.phases.startupInstrs == 1)
        spec.phases.startupInstrs = 0; // auto
    spec.phases.measureInstrs =
        argc > 3 ? std::atoll(argv[3]) : 500'000;
    if (argc > 4 && argv[4][0] == 's')
        spec.system.smt = false;
    if (argc > 5 && argv[5][0] == 'a')
        spec.system.withOs = false;
    spec.workload.spec.inputChunks = 48;
    RunResult res = Session(spec).run();

    const MetricsSnapshot &d = res.steady;
    std::printf("retired: total=%llu\n",
                (unsigned long long)d.core.totalRetired());
    for (int t = 0; t < NumServiceTags; ++t) {
        double s = tagSharePct(d, t);
        if (s > 0.1)
            std::printf("  tag %-14s %6.2f%%\n", serviceTagName(t), s);
    }
    std::printf("mm entries:\n");
    for (auto &kv : d.mmEntries)
        std::printf("  %-14s %llu\n", kv.first.c_str(),
                    (unsigned long long)kv.second);
    std::printf("syscalls:\n");
    for (auto &kv : d.syscalls)
        std::printf("  %-14s %llu\n", kv.first.c_str(),
                    (unsigned long long)kv.second);
    std::printf("dtlb: user acc=%llu miss=%llu  kern acc=%llu miss=%llu\n",
                (unsigned long long)d.dtlb.accesses[0],
                (unsigned long long)d.dtlb.misses[0],
                (unsigned long long)d.dtlb.accesses[1],
                (unsigned long long)d.dtlb.misses[1]);
    std::printf("squashed=%llu fetched=%llu wrongpath=%llu\n",
                (unsigned long long)d.core.squashed,
                (unsigned long long)d.core.fetched,
                (unsigned long long)d.core.fetchedWrongPath);
    std::printf("switches=%llu\n",
                (unsigned long long)d.contextSwitches);
    const ArchMetrics a = archMetrics(d);
    std::printf("cycles=%llu ipc=%.3f\n",
                (unsigned long long)d.core.cycles, a.ipc);
    std::printf("0fetch=%.1f%% 0issue=%.1f%% maxissue=%.1f%% "
                "fetchable=%.2f\n",
                a.zeroFetchPct, a.zeroIssuePct, a.maxIssuePct,
                a.fetchableContexts);
    std::printf("out_imiss=%.2f out_dmiss=%.2f out_l2=%.2f\n",
                a.outstandingImiss, a.outstandingDmiss,
                a.outstandingL2miss);
    std::printf("l1i=%.2f%% l1d=%.2f%% l2=%.2f%% btb=%.1f%% "
                "bp=%.1f%%\n",
                a.l1iMissPct, a.l1dMissPct, a.l2MissPct, a.btbMissPct,
                a.branchMispredPct);
    auto dump_struct = [](const char *name,
                          const InterferenceStats &s) {
        std::printf("%s: user %llu/%llu (%.1f%%) kern %llu/%llu "
                    "(%.1f%%)\n",
                    name, (unsigned long long)s.misses[0],
                    (unsigned long long)s.accesses[0],
                    s.accesses[0] ? 100.0 * s.misses[0] / s.accesses[0]
                                  : 0.0,
                    (unsigned long long)s.misses[1],
                    (unsigned long long)s.accesses[1],
                    s.accesses[1] ? 100.0 * s.misses[1] / s.accesses[1]
                                  : 0.0);
        const char *cn[] = {"compulsory", "intra", "inter", "ukern",
                            "osinval"};
        for (int k = 0; k < numMissCauses; ++k)
            std::printf("    %-10s u=%llu k=%llu\n", cn[k],
                        (unsigned long long)s.cause[0][k],
                        (unsigned long long)s.cause[1][k]);
    };
    dump_struct("L1D", d.l1d);
    dump_struct("L1I", d.l1i);
    dump_struct("L2", d.l2);
    std::printf("fetch stalls:\n");
    for (auto &kv : d.core.kernelEntries.all())
        std::printf("  %-14s %llu\n", kv.first.c_str(),
                    (unsigned long long)kv.second);
    return 0;
}
