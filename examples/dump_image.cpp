/**
 * @file
 * Inspect generated program images: summaries of the kernel image and
 * the workload images, plus a full listing of a chosen kernel routine
 * (`dump_image [function-name]`).
 */

#include <cstdio>
#include <iostream>

#include "harness/env.h"
#include "isa/disasm.h"
#include "kernel/image.h"
#include "workload/apache.h"
#include "workload/specint.h"

using namespace smtos;

int
main(int argc, char **argv)
{
    EnvOverrides::fromEnvironment().install();

    auto kc = buildKernelImage(0xfeedull ^ 1234ull);
    imageSummary(std::cout, kc->image);

    ApacheParams ap;
    ApacheWorkload aw = buildApache(ap);
    imageSummary(std::cout, *aw.image);

    SpecIntParams sp;
    sp.numApps = 1;
    SpecIntWorkload sw = buildSpecInt(sp);
    imageSummary(std::cout, *sw.images[0]);

    const char *fn = argc > 1 ? argv[1] : "pal_dtlb_refill";
    std::printf("\n--- listing of kernel function '%s' ---\n", fn);
    listFunction(std::cout, kc->image, kc->image.funcByName(fn));
    return 0;
}
