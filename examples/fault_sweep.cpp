/**
 * @file
 * Graceful-degradation study: the Apache-like server under increasing
 * packet loss. For each loss rate the sweep reports throughput, p99
 * request latency, retransmits, and backpressure drops — the
 * robustness counterpart of the paper's throughput tables.
 *
 * Also the CI soak driver: `fault_sweep --soak` runs one long Apache
 * leg under the SMTOS_FAULTS plan (or a canned 1%-loss + machine-check
 * plan when unset) with the invariant auditor and the co-simulation
 * oracle armed, and fails loudly if the server stops serving or the
 * architectural stream diverges.
 */

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "common/table.h"
#include "fault/auditor.h"
#include "fault/diag.h"
#include "fault/fault.h"
#include "harness/cosim.h"
#include "harness/env.h"
#include "harness/parallel.h"
#include "sim/config.h"
#include "sim/system.h"
#include "workload/apache.h"

using namespace smtos;

namespace {

struct SweepPoint
{
    double loss = 0.0;
    std::uint64_t requests = 0;
    double throughput = 0.0; ///< requests per million cycles
    double p99 = 0.0;
    FaultCounters counters;
};

SweepPoint
runPoint(double loss, Cycle cycles)
{
    MachineConfig cfg = smtConfig();
    cfg.kernel.seed = 11;
    cfg.kernel.enableNetwork = true;
    cfg.kernel.web.retryTimeout = 30000;
    System sys(cfg);

    FaultParams fp;
    fp.lossPct = loss;
    std::unique_ptr<FaultPlan> plan;
    if (fp.any()) {
        plan = std::make_unique<FaultPlan>(fp);
        sys.attachFaults(plan.get());
    }

    ApacheWorkload w = buildApache(ApacheParams{});
    installApache(sys.kernel(), w);
    sys.start();
    sys.runCycles(cycles);

    SweepPoint pt;
    pt.loss = loss;
    pt.requests = sys.kernel().requestsServed();
    pt.throughput =
        1e6 * static_cast<double>(pt.requests) /
        static_cast<double>(cycles);
    pt.p99 = sys.kernel().clients().latency().p99();
    pt.counters = sys.kernel().faultCounters();
    return pt;
}

int
soak()
{
    FaultParams fp = EnvOverrides::ambient().faults;
    if (!fp.any()) {
        fp.lossPct = 0.01;
        fp.mcePeriod = 25000;
        fp.auditEvery = 5000;
    }
    std::printf("soak: loss=%.3f mce=%llu audit=%llu\n", fp.lossPct,
                static_cast<unsigned long long>(fp.mcePeriod),
                static_cast<unsigned long long>(fp.auditEvery));

    MachineConfig cfg = smtConfig();
    cfg.kernel.seed = 11;
    cfg.kernel.enableNetwork = true;
    cfg.kernel.web.retryTimeout = 30000;
    System sys(cfg);

    FaultPlan plan(fp);
    sys.attachFaults(&plan);
    std::unique_ptr<InvariantAuditor> auditor;
    if (fp.auditEvery > 0) {
        auditor = std::make_unique<InvariantAuditor>(sys,
                                                     fp.auditEvery);
        sys.kernel().setAuditor(auditor.get());
    }
    diagArm(&sys, &plan);

    ApacheWorkload w = buildApache(ApacheParams{});
    installApache(sys.kernel(), w);
    Cosim cosim(sys.pipeline());
    sys.start();
    sys.runCycles(2'000'000);

    const FaultCounters c = sys.kernel().faultCounters();
    std::printf("soak: served=%llu injected=%llu retransmits=%llu "
                "kills=%llu cosim_checked=%llu\n",
                static_cast<unsigned long long>(
                    sys.kernel().requestsServed()),
                static_cast<unsigned long long>(
                    plan.injected().total()),
                static_cast<unsigned long long>(c.retransmits),
                static_cast<unsigned long long>(c.mceKills),
                static_cast<unsigned long long>(cosim.checked()));

    int rc = 0;
    if (cosim.diverged()) {
        std::printf("soak: FAIL cosim diverged\n%s\n",
                    cosim.report().c_str());
        diagWriteBundle("soak: cosim divergence");
        rc = 1;
    }
    if (sys.kernel().requestsServed() == 0) {
        std::printf("soak: FAIL no requests served\n");
        diagWriteBundle("soak: zero throughput");
        rc = 1;
    }
    diagArm(nullptr, nullptr);
    if (rc == 0)
        std::printf("soak: OK\n");
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    EnvOverrides::fromEnvironment().install();

    if (argc > 1 && std::strcmp(argv[1], "--soak") == 0)
        return soak();

    std::printf("smtos fault sweep: Apache under packet loss\n");
    const double rates[] = {0.0, 0.005, 0.01, 0.02, 0.05};
    // Long enough to amortize the server boot phase (the first
    // request completes around cycle 900k).
    const Cycle cycles = 3'000'000;

    TextTable t("graceful degradation vs packet loss");
    t.header({"loss %", "requests", "req/Mcycle", "p99 latency",
              "retransmits", "aborts", "syn drops"});
    std::printf("csv: loss,requests,throughput,p99,retransmits,"
                "aborts,syn_drops\n");
    // Each point is an independent system; run them on the worker
    // pool and report in rate order.
    std::vector<SweepPoint> points(std::size(rates));
    parallelFor(points.size(), [&](std::size_t i) {
        points[i] = runPoint(rates[i], cycles);
    });
    for (const SweepPoint &p : points) {
        const double loss = p.loss;
        t.row({TextTable::num(100.0 * loss, 1),
               TextTable::num(p.requests),
               TextTable::num(p.throughput, 1),
               TextTable::num(p.p99, 0),
               TextTable::num(p.counters.retransmits),
               TextTable::num(p.counters.clientAborts),
               TextTable::num(p.counters.synDrops)});
        std::printf("csv: %.3f,%llu,%.2f,%.0f,%llu,%llu,%llu\n", loss,
                    static_cast<unsigned long long>(p.requests),
                    p.throughput, p.p99,
                    static_cast<unsigned long long>(
                        p.counters.retransmits),
                    static_cast<unsigned long long>(
                        p.counters.clientAborts),
                    static_cast<unsigned long long>(
                        p.counters.synDrops));
    }
    t.print();
    return 0;
}
