/**
 * @file
 * Scheduler experiment (the paper's future-work direction): vary the
 * number of server processes relative to the eight hardware contexts
 * and watch scheduling overhead and throughput respond.
 */

#include <cstdio>

#include "common/table.h"
#include "harness/env.h"
#include "harness/session.h"

using namespace smtos;

int
main()
{
    EnvOverrides::fromEnvironment().install();

    std::printf("smtos scheduler experiment: server processes vs "
                "hardware contexts\n");

    TextTable t("Apache on the 8-context SMT");
    t.header({"server processes", "IPC", "context switches",
              "sched+idle % of cycles", "requests"});
    for (int servers : {8, 16, 32, 64}) {
        Session::Config s;
        s.workload.kind = WorkloadConfig::Kind::Apache;
        s.workload.apache.numServers = servers;
        s.phases.startupInstrs = 1'200'000;
        s.phases.measureInstrs = 1'500'000;
        RunResult r = Session(s).run();
        const ArchMetrics a = archMetrics(r.steady);
        const double sched =
            groupSharePct(r.steady, ServiceGroup::Sched) +
            groupSharePct(r.steady, ServiceGroup::Idle);
        t.row({TextTable::num(static_cast<std::uint64_t>(servers)),
               TextTable::num(a.ipc, 2),
               TextTable::num(r.steady.contextSwitches),
               TextTable::num(sched, 2),
               TextTable::num(r.steady.requestsServed)});
    }
    t.print();
    return 0;
}
