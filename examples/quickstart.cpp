/**
 * @file
 * Quickstart: build the paper's 8-context SMT (Table 1), run the
 * Apache-like web server under the MiniOS kernel for a short interval,
 * and print the headline metrics.
 */

#include <cstdio>

#include "common/table.h"
#include "harness/env.h"
#include "harness/session.h"

using namespace smtos;

int
main()
{
    EnvOverrides::fromEnvironment().install();

    Session::Config cfg;
    cfg.workload.kind = WorkloadConfig::Kind::Apache;
    cfg.system.smt = true;
    cfg.system.withOs = true;
    cfg.phases.startupInstrs = 200'000;
    cfg.phases.measureInstrs = 1'000'000;

    std::printf("smtos quickstart: Apache on an 8-context SMT\n");
    RunResult res = Session(cfg).run();

    const ArchMetrics a = archMetrics(res.steady);
    const ModeShares m = modeShares(res.steady);

    TextTable t("headline metrics (steady state)");
    t.header({"metric", "value"});
    t.row({"IPC", TextTable::num(a.ipc, 2)});
    t.row({"user cycles", TextTable::percent(m.userPct)});
    t.row({"kernel cycles", TextTable::percent(m.kernelPct)});
    t.row({"PAL cycles", TextTable::percent(m.palPct)});
    t.row({"idle cycles", TextTable::percent(m.idlePct)});
    t.row({"L1I miss rate", TextTable::percent(a.l1iMissPct)});
    t.row({"L1D miss rate", TextTable::percent(a.l1dMissPct)});
    t.row({"L2 miss rate", TextTable::percent(a.l2MissPct)});
    t.row({"branch mispredict", TextTable::percent(a.branchMispredPct)});
    t.row({"fetchable contexts", TextTable::num(a.fetchableContexts, 2)});
    t.row({"requests served", TextTable::num(res.requestsServed)});
    t.print();
    return 0;
}
