/**
 * @file
 * Multiprogramming study: the SPECInt95-like workload on the SMT,
 * start-up vs steady-state OS behavior (the Section 3.1 questions).
 *
 * Snapshot workflow:
 *   multiprog_study --save-snapshot spec.snap   # startup, save, measure
 *   multiprog_study --from-snapshot spec.snap   # resume, measure only
 * The resumed measurement is bit-identical to the straight-through one.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/table.h"
#include "harness/env.h"
#include "harness/session.h"

using namespace smtos;

namespace {

bool
writeFile(const std::string &path, const std::vector<std::uint8_t> &b)
{
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char *>(b.data()),
              static_cast<std::streamsize>(b.size()));
    return static_cast<bool>(out);
}

std::vector<std::uint8_t>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                     std::istreambuf_iterator<char>());
}

void
printPhase(const char *title, const MetricsSnapshot &d)
{
    const ModeShares m = modeShares(d);
    const ArchMetrics a = archMetrics(d);
    TextTable t(title);
    t.header({"metric", "value"});
    t.row({"instructions", TextTable::num(d.core.totalRetired())});
    t.row({"IPC", TextTable::num(a.ipc, 2)});
    t.row({"user", TextTable::percent(m.userPct)});
    t.row({"kernel", TextTable::percent(m.kernelPct)});
    t.row({"pal", TextTable::percent(m.palPct)});
    t.row({"idle", TextTable::percent(m.idlePct)});
    t.row({"L1I miss", TextTable::percent(a.l1iMissPct)});
    t.row({"L1D miss", TextTable::percent(a.l1dMissPct)});
    t.row({"DTLB miss", TextTable::percent(a.dtlbMissPct)});
    t.print();
}

} // namespace

int
main(int argc, char **argv)
{
    EnvOverrides::fromEnvironment().install();

    std::string savePath, fromPath;
    for (int i = 1; i + 1 < argc; i += 2) {
        if (!std::strcmp(argv[i], "--save-snapshot"))
            savePath = argv[i + 1];
        else if (!std::strcmp(argv[i], "--from-snapshot"))
            fromPath = argv[i + 1];
    }

    Session::Config cfg;
    cfg.workload.kind = WorkloadConfig::Kind::SpecInt;
    cfg.workload.spec.inputChunks = 48;
    cfg.phases.measureInstrs = 1'000'000;

    std::printf("smtos multiprogramming study: SPECInt95-like x8\n");

    if (!fromPath.empty()) {
        Session::ResumeOptions opts;
        opts.phases = cfg.phases;
        std::string err;
        auto s = Session::resume(readFile(fromPath), opts, &err);
        if (!s) {
            std::fprintf(stderr, "cannot resume from %s: %s\n",
                         fromPath.c_str(), err.c_str());
            return 1;
        }
        printPhase("steady state (resumed)",
                   s->runMeasurement().steady);
        return 0;
    }

    Session session(cfg);
    session.runStartup();
    if (!savePath.empty()) {
        if (!writeFile(savePath, session.snapshot())) {
            std::fprintf(stderr, "cannot write %s\n", savePath.c_str());
            return 1;
        }
        std::printf("post-startup snapshot saved to %s\n",
                    savePath.c_str());
    }
    RunResult res = session.runMeasurement();
    printPhase("program start-up", res.startup);
    printPhase("steady state", res.steady);
    return 0;
}
