/**
 * @file
 * Multiprogramming study: the SPECInt95-like workload on the SMT,
 * start-up vs steady-state OS behavior (the Section 3.1 questions).
 */

#include <cstdio>

#include "common/table.h"
#include "harness/experiment.h"

using namespace smtos;

int
main()
{
    RunSpec spec;
    spec.workload = RunSpec::Workload::SpecInt;
    spec.smt = true;
    spec.withOs = true;
    spec.measureInstrs = 1'000'000;
    spec.spec.inputChunks = 48;

    std::printf("smtos multiprogramming study: SPECInt95-like x8\n");
    RunResult res = runExperiment(spec);

    for (int phase = 0; phase < 2; ++phase) {
        const MetricsSnapshot &d = phase ? res.steady : res.startup;
        const ModeShares m = modeShares(d);
        const ArchMetrics a = archMetrics(d);
        TextTable t(phase ? "steady state" : "program start-up");
        t.header({"metric", "value"});
        t.row({"instructions",
               TextTable::num(d.core.totalRetired())});
        t.row({"IPC", TextTable::num(a.ipc, 2)});
        t.row({"user", TextTable::percent(m.userPct)});
        t.row({"kernel", TextTable::percent(m.kernelPct)});
        t.row({"pal", TextTable::percent(m.palPct)});
        t.row({"idle", TextTable::percent(m.idlePct)});
        t.row({"L1I miss", TextTable::percent(a.l1iMissPct)});
        t.row({"L1D miss", TextTable::percent(a.l1dMissPct)});
        t.row({"DTLB miss", TextTable::percent(a.dtlbMissPct)});
        t.print();
    }
    return 0;
}
