# Empty compiler generated dependencies file for smtos.
# This may be replaced when dependencies are built.
