file(REMOVE_RECURSE
  "libsmtos.a"
)
