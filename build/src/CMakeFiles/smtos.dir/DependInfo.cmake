
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bp/btb.cc" "src/CMakeFiles/smtos.dir/bp/btb.cc.o" "gcc" "src/CMakeFiles/smtos.dir/bp/btb.cc.o.d"
  "/root/repo/src/bp/mcfarling.cc" "src/CMakeFiles/smtos.dir/bp/mcfarling.cc.o" "gcc" "src/CMakeFiles/smtos.dir/bp/mcfarling.cc.o.d"
  "/root/repo/src/bp/ras.cc" "src/CMakeFiles/smtos.dir/bp/ras.cc.o" "gcc" "src/CMakeFiles/smtos.dir/bp/ras.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/smtos.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/smtos.dir/common/logging.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/smtos.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/smtos.dir/common/stats.cc.o.d"
  "/root/repo/src/common/table.cc" "src/CMakeFiles/smtos.dir/common/table.cc.o" "gcc" "src/CMakeFiles/smtos.dir/common/table.cc.o.d"
  "/root/repo/src/common/trace.cc" "src/CMakeFiles/smtos.dir/common/trace.cc.o" "gcc" "src/CMakeFiles/smtos.dir/common/trace.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/CMakeFiles/smtos.dir/core/pipeline.cc.o" "gcc" "src/CMakeFiles/smtos.dir/core/pipeline.cc.o.d"
  "/root/repo/src/harness/experiment.cc" "src/CMakeFiles/smtos.dir/harness/experiment.cc.o" "gcc" "src/CMakeFiles/smtos.dir/harness/experiment.cc.o.d"
  "/root/repo/src/isa/codegen.cc" "src/CMakeFiles/smtos.dir/isa/codegen.cc.o" "gcc" "src/CMakeFiles/smtos.dir/isa/codegen.cc.o.d"
  "/root/repo/src/isa/cursor.cc" "src/CMakeFiles/smtos.dir/isa/cursor.cc.o" "gcc" "src/CMakeFiles/smtos.dir/isa/cursor.cc.o.d"
  "/root/repo/src/isa/disasm.cc" "src/CMakeFiles/smtos.dir/isa/disasm.cc.o" "gcc" "src/CMakeFiles/smtos.dir/isa/disasm.cc.o.d"
  "/root/repo/src/isa/instr.cc" "src/CMakeFiles/smtos.dir/isa/instr.cc.o" "gcc" "src/CMakeFiles/smtos.dir/isa/instr.cc.o.d"
  "/root/repo/src/isa/program.cc" "src/CMakeFiles/smtos.dir/isa/program.cc.o" "gcc" "src/CMakeFiles/smtos.dir/isa/program.cc.o.d"
  "/root/repo/src/kernel/fs.cc" "src/CMakeFiles/smtos.dir/kernel/fs.cc.o" "gcc" "src/CMakeFiles/smtos.dir/kernel/fs.cc.o.d"
  "/root/repo/src/kernel/image.cc" "src/CMakeFiles/smtos.dir/kernel/image.cc.o" "gcc" "src/CMakeFiles/smtos.dir/kernel/image.cc.o.d"
  "/root/repo/src/kernel/kernel.cc" "src/CMakeFiles/smtos.dir/kernel/kernel.cc.o" "gcc" "src/CMakeFiles/smtos.dir/kernel/kernel.cc.o.d"
  "/root/repo/src/kernel/netstack.cc" "src/CMakeFiles/smtos.dir/kernel/netstack.cc.o" "gcc" "src/CMakeFiles/smtos.dir/kernel/netstack.cc.o.d"
  "/root/repo/src/kernel/pal.cc" "src/CMakeFiles/smtos.dir/kernel/pal.cc.o" "gcc" "src/CMakeFiles/smtos.dir/kernel/pal.cc.o.d"
  "/root/repo/src/kernel/scheduler.cc" "src/CMakeFiles/smtos.dir/kernel/scheduler.cc.o" "gcc" "src/CMakeFiles/smtos.dir/kernel/scheduler.cc.o.d"
  "/root/repo/src/kernel/syscalls.cc" "src/CMakeFiles/smtos.dir/kernel/syscalls.cc.o" "gcc" "src/CMakeFiles/smtos.dir/kernel/syscalls.cc.o.d"
  "/root/repo/src/mem/bus.cc" "src/CMakeFiles/smtos.dir/mem/bus.cc.o" "gcc" "src/CMakeFiles/smtos.dir/mem/bus.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/smtos.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/smtos.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/hierarchy.cc" "src/CMakeFiles/smtos.dir/mem/hierarchy.cc.o" "gcc" "src/CMakeFiles/smtos.dir/mem/hierarchy.cc.o.d"
  "/root/repo/src/mem/missclass.cc" "src/CMakeFiles/smtos.dir/mem/missclass.cc.o" "gcc" "src/CMakeFiles/smtos.dir/mem/missclass.cc.o.d"
  "/root/repo/src/mem/mshr.cc" "src/CMakeFiles/smtos.dir/mem/mshr.cc.o" "gcc" "src/CMakeFiles/smtos.dir/mem/mshr.cc.o.d"
  "/root/repo/src/mem/storebuffer.cc" "src/CMakeFiles/smtos.dir/mem/storebuffer.cc.o" "gcc" "src/CMakeFiles/smtos.dir/mem/storebuffer.cc.o.d"
  "/root/repo/src/net/clients.cc" "src/CMakeFiles/smtos.dir/net/clients.cc.o" "gcc" "src/CMakeFiles/smtos.dir/net/clients.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/CMakeFiles/smtos.dir/sim/config.cc.o" "gcc" "src/CMakeFiles/smtos.dir/sim/config.cc.o.d"
  "/root/repo/src/sim/export.cc" "src/CMakeFiles/smtos.dir/sim/export.cc.o" "gcc" "src/CMakeFiles/smtos.dir/sim/export.cc.o.d"
  "/root/repo/src/sim/metrics.cc" "src/CMakeFiles/smtos.dir/sim/metrics.cc.o" "gcc" "src/CMakeFiles/smtos.dir/sim/metrics.cc.o.d"
  "/root/repo/src/sim/system.cc" "src/CMakeFiles/smtos.dir/sim/system.cc.o" "gcc" "src/CMakeFiles/smtos.dir/sim/system.cc.o.d"
  "/root/repo/src/vm/addrspace.cc" "src/CMakeFiles/smtos.dir/vm/addrspace.cc.o" "gcc" "src/CMakeFiles/smtos.dir/vm/addrspace.cc.o.d"
  "/root/repo/src/vm/physmem.cc" "src/CMakeFiles/smtos.dir/vm/physmem.cc.o" "gcc" "src/CMakeFiles/smtos.dir/vm/physmem.cc.o.d"
  "/root/repo/src/vm/tlb.cc" "src/CMakeFiles/smtos.dir/vm/tlb.cc.o" "gcc" "src/CMakeFiles/smtos.dir/vm/tlb.cc.o.d"
  "/root/repo/src/workload/apache.cc" "src/CMakeFiles/smtos.dir/workload/apache.cc.o" "gcc" "src/CMakeFiles/smtos.dir/workload/apache.cc.o.d"
  "/root/repo/src/workload/specint.cc" "src/CMakeFiles/smtos.dir/workload/specint.cc.o" "gcc" "src/CMakeFiles/smtos.dir/workload/specint.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
