# Empty compiler generated dependencies file for table9_os_impact_apache.
# This may be replaced when dependencies are built.
