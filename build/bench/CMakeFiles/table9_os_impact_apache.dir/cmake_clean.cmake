file(REMOVE_RECURSE
  "CMakeFiles/table9_os_impact_apache.dir/table9_os_impact_apache.cpp.o"
  "CMakeFiles/table9_os_impact_apache.dir/table9_os_impact_apache.cpp.o.d"
  "table9_os_impact_apache"
  "table9_os_impact_apache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_os_impact_apache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
