# Empty compiler generated dependencies file for table4_os_impact_specint.
# This may be replaced when dependencies are built.
