file(REMOVE_RECURSE
  "CMakeFiles/table4_os_impact_specint.dir/table4_os_impact_specint.cpp.o"
  "CMakeFiles/table4_os_impact_specint.dir/table4_os_impact_specint.cpp.o.d"
  "table4_os_impact_specint"
  "table4_os_impact_specint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_os_impact_specint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
