file(REMOVE_RECURSE
  "CMakeFiles/fig5_apache_cycles.dir/fig5_apache_cycles.cpp.o"
  "CMakeFiles/fig5_apache_cycles.dir/fig5_apache_cycles.cpp.o.d"
  "fig5_apache_cycles"
  "fig5_apache_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_apache_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
