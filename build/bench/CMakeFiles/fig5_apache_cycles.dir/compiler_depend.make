# Empty compiler generated dependencies file for fig5_apache_cycles.
# This may be replaced when dependencies are built.
