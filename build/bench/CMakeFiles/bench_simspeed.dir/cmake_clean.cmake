file(REMOVE_RECURSE
  "CMakeFiles/bench_simspeed.dir/bench_simspeed.cpp.o"
  "CMakeFiles/bench_simspeed.dir/bench_simspeed.cpp.o.d"
  "bench_simspeed"
  "bench_simspeed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simspeed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
