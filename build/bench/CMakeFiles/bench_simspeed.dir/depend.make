# Empty dependencies file for bench_simspeed.
# This may be replaced when dependencies are built.
