file(REMOVE_RECURSE
  "CMakeFiles/fig3_mm_incursions.dir/fig3_mm_incursions.cpp.o"
  "CMakeFiles/fig3_mm_incursions.dir/fig3_mm_incursions.cpp.o.d"
  "fig3_mm_incursions"
  "fig3_mm_incursions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_mm_incursions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
