# Empty compiler generated dependencies file for fig3_mm_incursions.
# This may be replaced when dependencies are built.
