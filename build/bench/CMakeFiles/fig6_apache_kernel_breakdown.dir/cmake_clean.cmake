file(REMOVE_RECURSE
  "CMakeFiles/fig6_apache_kernel_breakdown.dir/fig6_apache_kernel_breakdown.cpp.o"
  "CMakeFiles/fig6_apache_kernel_breakdown.dir/fig6_apache_kernel_breakdown.cpp.o.d"
  "fig6_apache_kernel_breakdown"
  "fig6_apache_kernel_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_apache_kernel_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
