# Empty compiler generated dependencies file for fig6_apache_kernel_breakdown.
# This may be replaced when dependencies are built.
