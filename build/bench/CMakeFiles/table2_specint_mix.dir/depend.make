# Empty dependencies file for table2_specint_mix.
# This may be replaced when dependencies are built.
