file(REMOVE_RECURSE
  "CMakeFiles/table2_specint_mix.dir/table2_specint_mix.cpp.o"
  "CMakeFiles/table2_specint_mix.dir/table2_specint_mix.cpp.o.d"
  "table2_specint_mix"
  "table2_specint_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_specint_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
