# Empty compiler generated dependencies file for fig4_specint_syscalls.
# This may be replaced when dependencies are built.
