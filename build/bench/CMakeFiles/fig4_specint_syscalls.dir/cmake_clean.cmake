file(REMOVE_RECURSE
  "CMakeFiles/fig4_specint_syscalls.dir/fig4_specint_syscalls.cpp.o"
  "CMakeFiles/fig4_specint_syscalls.dir/fig4_specint_syscalls.cpp.o.d"
  "fig4_specint_syscalls"
  "fig4_specint_syscalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_specint_syscalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
