file(REMOVE_RECURSE
  "CMakeFiles/table5_apache_mix.dir/table5_apache_mix.cpp.o"
  "CMakeFiles/table5_apache_mix.dir/table5_apache_mix.cpp.o.d"
  "table5_apache_mix"
  "table5_apache_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_apache_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
