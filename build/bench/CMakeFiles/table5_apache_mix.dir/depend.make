# Empty dependencies file for table5_apache_mix.
# This may be replaced when dependencies are built.
