file(REMOVE_RECURSE
  "CMakeFiles/table3_specint_misses.dir/table3_specint_misses.cpp.o"
  "CMakeFiles/table3_specint_misses.dir/table3_specint_misses.cpp.o.d"
  "table3_specint_misses"
  "table3_specint_misses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_specint_misses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
