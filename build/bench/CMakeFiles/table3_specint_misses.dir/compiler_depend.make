# Empty compiler generated dependencies file for table3_specint_misses.
# This may be replaced when dependencies are built.
