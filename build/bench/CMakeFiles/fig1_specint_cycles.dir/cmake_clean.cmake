file(REMOVE_RECURSE
  "CMakeFiles/fig1_specint_cycles.dir/fig1_specint_cycles.cpp.o"
  "CMakeFiles/fig1_specint_cycles.dir/fig1_specint_cycles.cpp.o.d"
  "fig1_specint_cycles"
  "fig1_specint_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_specint_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
