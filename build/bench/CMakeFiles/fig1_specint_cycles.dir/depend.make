# Empty dependencies file for fig1_specint_cycles.
# This may be replaced when dependencies are built.
