file(REMOVE_RECURSE
  "CMakeFiles/table6_apache_arch.dir/table6_apache_arch.cpp.o"
  "CMakeFiles/table6_apache_arch.dir/table6_apache_arch.cpp.o.d"
  "table6_apache_arch"
  "table6_apache_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_apache_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
