# Empty dependencies file for table6_apache_arch.
# This may be replaced when dependencies are built.
