# Empty dependencies file for table8_sharing.
# This may be replaced when dependencies are built.
