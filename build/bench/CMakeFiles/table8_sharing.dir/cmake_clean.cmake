file(REMOVE_RECURSE
  "CMakeFiles/table8_sharing.dir/table8_sharing.cpp.o"
  "CMakeFiles/table8_sharing.dir/table8_sharing.cpp.o.d"
  "table8_sharing"
  "table8_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
