# Empty dependencies file for fig2_specint_kernel_breakdown.
# This may be replaced when dependencies are built.
