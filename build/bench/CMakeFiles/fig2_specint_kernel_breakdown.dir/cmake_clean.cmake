file(REMOVE_RECURSE
  "CMakeFiles/fig2_specint_kernel_breakdown.dir/fig2_specint_kernel_breakdown.cpp.o"
  "CMakeFiles/fig2_specint_kernel_breakdown.dir/fig2_specint_kernel_breakdown.cpp.o.d"
  "fig2_specint_kernel_breakdown"
  "fig2_specint_kernel_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_specint_kernel_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
