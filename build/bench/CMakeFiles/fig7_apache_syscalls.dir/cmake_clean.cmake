file(REMOVE_RECURSE
  "CMakeFiles/fig7_apache_syscalls.dir/fig7_apache_syscalls.cpp.o"
  "CMakeFiles/fig7_apache_syscalls.dir/fig7_apache_syscalls.cpp.o.d"
  "fig7_apache_syscalls"
  "fig7_apache_syscalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_apache_syscalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
