# Empty compiler generated dependencies file for fig7_apache_syscalls.
# This may be replaced when dependencies are built.
