file(REMOVE_RECURSE
  "CMakeFiles/ablation_fetch_policy.dir/ablation_fetch_policy.cpp.o"
  "CMakeFiles/ablation_fetch_policy.dir/ablation_fetch_policy.cpp.o.d"
  "ablation_fetch_policy"
  "ablation_fetch_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fetch_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
