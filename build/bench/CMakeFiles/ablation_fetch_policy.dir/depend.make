# Empty dependencies file for ablation_fetch_policy.
# This may be replaced when dependencies are built.
