file(REMOVE_RECURSE
  "CMakeFiles/ablation_contexts.dir/ablation_contexts.cpp.o"
  "CMakeFiles/ablation_contexts.dir/ablation_contexts.cpp.o.d"
  "ablation_contexts"
  "ablation_contexts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_contexts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
