# Empty compiler generated dependencies file for ablation_contexts.
# This may be replaced when dependencies are built.
