# Empty dependencies file for ablation_tlb_ipr.
# This may be replaced when dependencies are built.
