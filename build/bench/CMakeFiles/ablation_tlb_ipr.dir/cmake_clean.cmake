file(REMOVE_RECURSE
  "CMakeFiles/ablation_tlb_ipr.dir/ablation_tlb_ipr.cpp.o"
  "CMakeFiles/ablation_tlb_ipr.dir/ablation_tlb_ipr.cpp.o.d"
  "ablation_tlb_ipr"
  "ablation_tlb_ipr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tlb_ipr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
