# Empty dependencies file for table7_apache_misses.
# This may be replaced when dependencies are built.
