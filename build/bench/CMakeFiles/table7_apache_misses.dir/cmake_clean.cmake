file(REMOVE_RECURSE
  "CMakeFiles/table7_apache_misses.dir/table7_apache_misses.cpp.o"
  "CMakeFiles/table7_apache_misses.dir/table7_apache_misses.cpp.o.d"
  "table7_apache_misses"
  "table7_apache_misses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_apache_misses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
