file(REMOVE_RECURSE
  "CMakeFiles/test_trace_disasm.dir/test_trace_disasm.cc.o"
  "CMakeFiles/test_trace_disasm.dir/test_trace_disasm.cc.o.d"
  "test_trace_disasm"
  "test_trace_disasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_disasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
