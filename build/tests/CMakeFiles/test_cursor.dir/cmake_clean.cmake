file(REMOVE_RECURSE
  "CMakeFiles/test_cursor.dir/test_cursor.cc.o"
  "CMakeFiles/test_cursor.dir/test_cursor.cc.o.d"
  "test_cursor"
  "test_cursor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cursor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
