# Empty dependencies file for test_cursor.
# This may be replaced when dependencies are built.
