file(REMOVE_RECURSE
  "CMakeFiles/test_vm.dir/test_vm.cc.o"
  "CMakeFiles/test_vm.dir/test_vm.cc.o.d"
  "test_vm"
  "test_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
