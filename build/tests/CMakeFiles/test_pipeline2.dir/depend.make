# Empty dependencies file for test_pipeline2.
# This may be replaced when dependencies are built.
