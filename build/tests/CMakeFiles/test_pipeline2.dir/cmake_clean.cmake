file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline2.dir/test_pipeline2.cc.o"
  "CMakeFiles/test_pipeline2.dir/test_pipeline2.cc.o.d"
  "test_pipeline2"
  "test_pipeline2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
