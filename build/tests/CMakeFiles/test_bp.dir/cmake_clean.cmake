file(REMOVE_RECURSE
  "CMakeFiles/test_bp.dir/test_bp.cc.o"
  "CMakeFiles/test_bp.dir/test_bp.cc.o.d"
  "test_bp"
  "test_bp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
