# Empty compiler generated dependencies file for test_bp.
# This may be replaced when dependencies are built.
