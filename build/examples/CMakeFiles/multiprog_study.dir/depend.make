# Empty dependencies file for multiprog_study.
# This may be replaced when dependencies are built.
