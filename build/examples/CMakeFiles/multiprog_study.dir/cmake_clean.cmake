file(REMOVE_RECURSE
  "CMakeFiles/multiprog_study.dir/multiprog_study.cpp.o"
  "CMakeFiles/multiprog_study.dir/multiprog_study.cpp.o.d"
  "multiprog_study"
  "multiprog_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiprog_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
