file(REMOVE_RECURSE
  "CMakeFiles/debug_dump.dir/debug_dump.cpp.o"
  "CMakeFiles/debug_dump.dir/debug_dump.cpp.o.d"
  "debug_dump"
  "debug_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
