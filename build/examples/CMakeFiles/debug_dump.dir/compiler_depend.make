# Empty compiler generated dependencies file for debug_dump.
# This may be replaced when dependencies are built.
