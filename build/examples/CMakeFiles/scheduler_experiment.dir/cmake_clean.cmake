file(REMOVE_RECURSE
  "CMakeFiles/scheduler_experiment.dir/scheduler_experiment.cpp.o"
  "CMakeFiles/scheduler_experiment.dir/scheduler_experiment.cpp.o.d"
  "scheduler_experiment"
  "scheduler_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
