# Empty compiler generated dependencies file for scheduler_experiment.
# This may be replaced when dependencies are built.
