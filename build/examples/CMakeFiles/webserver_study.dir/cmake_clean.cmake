file(REMOVE_RECURSE
  "CMakeFiles/webserver_study.dir/webserver_study.cpp.o"
  "CMakeFiles/webserver_study.dir/webserver_study.cpp.o.d"
  "webserver_study"
  "webserver_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webserver_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
