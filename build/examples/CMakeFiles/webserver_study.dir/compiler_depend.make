# Empty compiler generated dependencies file for webserver_study.
# This may be replaced when dependencies are built.
