file(REMOVE_RECURSE
  "CMakeFiles/dump_image.dir/dump_image.cpp.o"
  "CMakeFiles/dump_image.dir/dump_image.cpp.o.d"
  "dump_image"
  "dump_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dump_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
