# Empty compiler generated dependencies file for dump_image.
# This may be replaced when dependencies are built.
